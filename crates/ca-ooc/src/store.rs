//! [`TileStore`]: a matrix laid out as block-column panels in a single
//! file, with explicit byte accounting on every transfer.
//!
//! The layout is plain column-major with a fixed self-describing header, so
//! a *panel* (any contiguous column range) is a contiguous byte run and a
//! partial-height column read is one seek plus one sequential read per
//! column. Elements are stored as their IEEE-754 bit patterns in
//! little-endian order at the element's native width
//! ([`Scalar::BYTES`]), which makes store roundtrips bitwise-exact in both
//! precisions — the property the out-of-core drivers' bitwise-identity
//! contract rests on.
//!
//! Every read and write updates both the store's own [`IoVolume`] (so a
//! driver can report the I/O of one factorization in isolation) and the
//! process-wide [`crate::metrics::ooc_metrics`] instruments that
//! `ca-serve`/`cafactor top` expose.

use ca_core::FactorError;
use ca_matrix::{Matrix, Scalar};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::ooc_metrics;

/// Magic bytes opening every tile-store file (version 1).
const MAGIC: &[u8; 8] = b"CAOOCTS1";
/// Header: magic + four little-endian `u64` fields
/// (`elem_bytes`, `m`, `n`, `panel_width`).
const HEADER_LEN: u64 = 8 + 4 * 8;

/// Byte counters for one store: reads, writes, and panel-load timing.
#[derive(Debug, Default)]
pub struct IoVolume {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    panel_loads: AtomicU64,
    load_nanos: AtomicU64,
}

/// Point-in-time copy of an [`IoVolume`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IoSnapshot {
    /// Total bytes read from the file.
    pub bytes_read: u64,
    /// Total bytes written to the file.
    pub bytes_written: u64,
    /// Number of panel/chunk load operations.
    pub panel_loads: u64,
    /// Wall-clock seconds spent in load operations.
    pub load_seconds: f64,
}

impl IoSnapshot {
    /// Element-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            panel_loads: self.panel_loads - earlier.panel_loads,
            load_seconds: self.load_seconds - earlier.load_seconds,
        }
    }
}

impl IoVolume {
    fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            bytes_read: self.bytes_read.load(Relaxed),
            bytes_written: self.bytes_written.load(Relaxed),
            panel_loads: self.panel_loads.load(Relaxed),
            load_seconds: self.load_nanos.load(Relaxed) as f64 / 1e9,
        }
    }
}

/// A matrix stored on disk as block-column panels.
///
/// `m × n` elements of `T`, column-major, one file. The nominal panel
/// width recorded in the header is layout metadata from the creator; the
/// accessors take arbitrary column ranges (panels are contiguous byte
/// runs either way).
#[derive(Debug)]
pub struct TileStore<T: Scalar> {
    file: Mutex<File>,
    path: PathBuf,
    m: usize,
    n: usize,
    w: usize,
    stats: IoVolume,
    _elem: PhantomData<T>,
}

fn err(op: &str, e: std::io::Error) -> FactorError {
    FactorError::io(op, e)
}

impl<T: Scalar> TileStore<T> {
    /// Creates (truncating) a store for an `m × n` matrix with nominal
    /// panel width `w`, pre-sizing the file to its final length.
    pub fn create(path: impl AsRef<Path>, m: usize, n: usize, w: usize) -> Result<Self, FactorError> {
        assert!(m > 0 && n > 0 && w > 0, "empty store shape");
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| err("create", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        for v in [T::BYTES as u64, m as u64, n as u64, w as u64] {
            header.extend_from_slice(&v.to_le_bytes());
        }
        file.write_all(&header).map_err(|e| err("create", e))?;
        file.set_len(HEADER_LEN + (m * n * T::BYTES) as u64).map_err(|e| err("create", e))?;
        Ok(Self { file: Mutex::new(file), path, m, n, w, stats: IoVolume::default(), _elem: PhantomData })
    }

    /// Opens an existing store, validating the header against `T`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FactorError> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).open(&path).map_err(|e| err("open", e))?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header).map_err(|e| err("open", e))?;
        if &header[..8] != MAGIC {
            return Err(FactorError::Io {
                op: "open".into(),
                message: format!("{}: not a tile store (bad magic)", path.display()),
            });
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&header[8 + i * 8..16 + i * 8]);
            u64::from_le_bytes(b) as usize
        };
        let (eb, m, n, w) = (word(0), word(1), word(2), word(3));
        if eb != T::BYTES {
            return Err(FactorError::Io {
                op: "open".into(),
                message: format!("element width {eb} in file, {} expected for {}", T::BYTES, T::NAME),
            });
        }
        Ok(Self { file: Mutex::new(file), path, m, n, w, stats: IoVolume::default(), _elem: PhantomData })
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Nominal panel width from the header.
    pub fn panel_width(&self) -> usize {
        self.w
    }

    /// Number of nominal panels (`⌈n/w⌉`).
    pub fn num_panels(&self) -> usize {
        self.n.div_ceil(self.w)
    }

    /// Width of nominal panel `j`.
    pub fn width_of(&self, j: usize) -> usize {
        self.w.min(self.n - j * self.w)
    }

    /// Backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// This store's transfer counters.
    pub fn io(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    fn offset(&self, row: usize, col: usize) -> u64 {
        HEADER_LEN + ((col * self.m + row) * T::BYTES) as u64
    }

    /// Reads columns `c0..c0+nc`, rows `r0..m`, as an `(m-r0) × nc` matrix.
    ///
    /// This is the streaming primitive of the left-looking drivers: a prior
    /// panel's factor block enters RAM one column range at a time, never
    /// whole. Counts bytes and load latency.
    pub fn read_cols(&self, c0: usize, nc: usize, r0: usize) -> Result<Matrix<T>, FactorError> {
        assert!(r0 < self.m, "row start out of bounds");
        self.read_block(r0, self.m - r0, c0, nc)
    }

    /// Reads the `rows × nc` block at `(r0, c0)` (the general form of
    /// [`TileStore::read_cols`] — CAQR uses it to pull one leaf's reflector
    /// trapezoid without the rows below its group).
    pub fn read_block(
        &self,
        r0: usize,
        rows: usize,
        c0: usize,
        nc: usize,
    ) -> Result<Matrix<T>, FactorError> {
        assert!(c0 + nc <= self.n && r0 + rows <= self.m, "block out of bounds");
        let t0 = Instant::now();
        let mut out = Matrix::<T>::zeros(rows, nc);
        let mut raw = vec![0u8; rows * T::BYTES];
        {
            let mut file = self.file.lock().expect("store mutex poisoned");
            for c in 0..nc {
                file.seek(SeekFrom::Start(self.offset(r0, c0 + c)))
                    .map_err(|e| err("read_cols", e))?;
                file.read_exact(&mut raw).map_err(|e| err("read_cols", e))?;
                let col = &mut out.as_mut_slice()[c * rows..(c + 1) * rows];
                decode_column::<T>(&raw, col);
            }
        }
        let bytes = (rows * nc * T::BYTES) as u64;
        self.account_read(bytes, t0.elapsed().as_nanos() as u64);
        Ok(out)
    }

    /// Writes `a` into columns `c0..c0+a.ncols()`, rows `r0..r0+a.nrows()`.
    pub fn write_cols(&self, c0: usize, r0: usize, a: &Matrix<T>) -> Result<(), FactorError> {
        let (rows, nc) = (a.nrows(), a.ncols());
        assert!(c0 + nc <= self.n && r0 + rows <= self.m, "write range out of bounds");
        let mut raw = vec![0u8; rows * T::BYTES];
        {
            let mut file = self.file.lock().expect("store mutex poisoned");
            for c in 0..nc {
                encode_column::<T>(&a.as_slice()[c * rows..(c + 1) * rows], &mut raw);
                file.seek(SeekFrom::Start(self.offset(r0, c0 + c)))
                    .map_err(|e| err("write_cols", e))?;
                file.write_all(&raw).map_err(|e| err("write_cols", e))?;
            }
        }
        let bytes = (rows * nc * T::BYTES) as u64;
        self.stats.bytes_written.fetch_add(bytes, Relaxed);
        ooc_metrics().bytes_written.add(bytes);
        Ok(())
    }

    /// Reads nominal panel `j` in full height.
    pub fn read_panel(&self, j: usize) -> Result<Matrix<T>, FactorError> {
        self.read_cols(j * self.w, self.width_of(j), 0)
    }

    /// Writes nominal panel `j` (full height).
    pub fn write_panel(&self, j: usize, a: &Matrix<T>) -> Result<(), FactorError> {
        assert_eq!(a.nrows(), self.m, "panel must be full height");
        assert_eq!(a.ncols(), self.width_of(j), "panel width mismatch");
        self.write_cols(j * self.w, 0, a)
    }

    /// Fills the store from an in-RAM matrix (tests, benches, import).
    pub fn import_matrix(&self, a: &Matrix<T>) -> Result<(), FactorError> {
        assert_eq!((a.nrows(), a.ncols()), (self.m, self.n), "shape mismatch");
        self.write_cols(0, 0, a)
    }

    /// Materializes the whole store in RAM (small matrices only).
    pub fn export_matrix(&self) -> Result<Matrix<T>, FactorError> {
        self.read_cols(0, self.n, 0)
    }

    /// Flushes file buffers to the OS.
    pub fn sync(&self) -> Result<(), FactorError> {
        self.file.lock().expect("store mutex poisoned").sync_all().map_err(|e| err("sync", e))
    }

    fn account_read(&self, bytes: u64, nanos: u64) {
        self.stats.bytes_read.fetch_add(bytes, Relaxed);
        self.stats.panel_loads.fetch_add(1, Relaxed);
        self.stats.load_nanos.fetch_add(nanos, Relaxed);
        let m = ooc_metrics();
        m.bytes_read.add(bytes);
        m.panel_load_seconds.observe(nanos as f64 / 1e9);
    }
}

fn encode_column<T: Scalar>(src: &[T], raw: &mut [u8]) {
    debug_assert_eq!(raw.len(), src.len() * T::BYTES);
    for (v, dst) in src.iter().zip(raw.chunks_exact_mut(T::BYTES)) {
        dst.copy_from_slice(&v.to_bits_u64().to_le_bytes()[..T::BYTES]);
    }
}

fn decode_column<T: Scalar>(raw: &[u8], dst: &mut [T]) {
    debug_assert_eq!(raw.len(), dst.len() * T::BYTES);
    for (chunk, v) in raw.chunks_exact(T::BYTES).zip(dst.iter_mut()) {
        let mut b = [0u8; 8];
        b[..T::BYTES].copy_from_slice(chunk);
        *v = T::from_bits_u64(u64::from_le_bytes(b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{random_uniform, seeded_rng};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ca_ooc_store_{name}_{}.bin", std::process::id()))
    }

    #[test]
    fn roundtrip_is_bitwise_both_precisions() {
        let a = random_uniform(23, 11, &mut seeded_rng(9));
        let path = tmp("rt64");
        let s = TileStore::<f64>::create(&path, 23, 11, 4).unwrap();
        s.import_matrix(&a).unwrap();
        let b = s.export_matrix().unwrap();
        for j in 0..11 {
            for i in 0..23 {
                assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits());
            }
        }
        let a32 = Matrix::<f32>::from_f64(&a);
        let p32 = tmp("rt32");
        let s32 = TileStore::<f32>::create(&p32, 23, 11, 4).unwrap();
        s32.import_matrix(&a32).unwrap();
        let b32 = s32.export_matrix().unwrap();
        for j in 0..11 {
            for i in 0..23 {
                assert_eq!(a32[(i, j)].to_bits(), b32[(i, j)].to_bits());
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&p32);
    }

    #[test]
    fn partial_reads_and_writes_address_the_right_block() {
        let a = random_uniform(10, 8, &mut seeded_rng(3));
        let path = tmp("partial");
        let s = TileStore::<f64>::create(&path, 10, 8, 3).unwrap();
        s.import_matrix(&a).unwrap();
        // rows 4.., cols 2..5
        let blk = s.read_cols(2, 3, 4).unwrap();
        for c in 0..3 {
            for r in 0..6 {
                assert_eq!(blk[(r, c)], a[(4 + r, 2 + c)]);
            }
        }
        // Overwrite that block with zeros, check surroundings intact.
        s.write_cols(2, 4, &Matrix::zeros(6, 3)).unwrap();
        let b = s.export_matrix().unwrap();
        assert_eq!(b[(4, 2)], 0.0);
        assert_eq!(b[(3, 2)], a[(3, 2)]);
        assert_eq!(b[(4, 1)], a[(4, 1)]);
        assert_eq!(b[(4, 5)], a[(4, 5)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_validates_header_and_preserves_data() {
        let a = random_uniform(6, 6, &mut seeded_rng(1));
        let path = tmp("reopen");
        {
            let s = TileStore::<f64>::create(&path, 6, 6, 2).unwrap();
            s.import_matrix(&a).unwrap();
            s.sync().unwrap();
        }
        let s = TileStore::<f64>::open(&path).unwrap();
        assert_eq!((s.nrows(), s.ncols(), s.panel_width(), s.num_panels()), (6, 6, 2, 3));
        assert_eq!(s.export_matrix().unwrap(), a);
        // Wrong element type must be refused.
        assert!(matches!(
            TileStore::<f32>::open(&path),
            Err(FactorError::Io { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn io_counters_track_transfer_volume() {
        let path = tmp("vol");
        let s = TileStore::<f64>::create(&path, 16, 8, 4).unwrap();
        let before = s.io();
        s.import_matrix(&random_uniform(16, 8, &mut seeded_rng(2))).unwrap();
        let p = s.read_panel(1).unwrap();
        assert_eq!((p.nrows(), p.ncols()), (16, 4));
        let d = s.io().since(&before);
        assert_eq!(d.bytes_written, 16 * 8 * 8);
        assert_eq!(d.bytes_read, 16 * 4 * 8);
        assert_eq!(d.panel_loads, 1);
        let _ = std::fs::remove_file(&path);
    }
}
