//! Streaming `O(n²)` verification probes for store-resident factors.
//!
//! A full `‖PA − LU‖ / ‖A‖` residual needs the `O(n³)` product of the
//! factors — more arithmetic than the factorization itself and a second
//! full matrix in RAM, neither of which an out-of-core run can afford.
//! These probes instead verify the factors against a random vector: with
//! `y₀ = A·x` captured *before* factoring (one streamed pass), the scaled
//! probe residual
//!
//! ```text
//!   ‖Pᵀ·L·(U·x) − y₀‖₂ / (‖A‖_F · ‖x‖₂)     (LU)
//!   ‖Q·(R·x) − y₀‖₂ / (‖A‖_F · ‖x‖₂)        (QR)
//! ```
//!
//! is of the same `O(ε·growth)` order as the backward-error gate in
//! `tests/accuracy.rs` and costs one pass over the factored store. The
//! factor products are accumulated in `f64` whatever the working
//! precision, so the probe measures the factors' error, not its own.

use crate::qr::apply_panel_from_store;
use crate::store::TileStore;
use ca_core::tsqr::PanelQ;
use ca_kernels::{Kernel, Trans};
use ca_matrix::{Matrix, PivotSeq, Scalar, SharedMatrix};
use ca_core::FactorError;

/// One streamed pass over an unfactored store: returns `A·x` and `‖A‖_F`,
/// both accumulated in `f64`.
pub fn stream_matvec<T: Scalar>(
    store: &TileStore<T>,
    x: &[f64],
) -> Result<(Vec<f64>, f64), FactorError> {
    let m = store.nrows();
    let n = store.ncols();
    assert_eq!(x.len(), n, "probe vector length mismatch");
    let mut y = vec![0.0f64; m];
    let mut fro2 = 0.0f64;
    for j in 0..store.num_panels() {
        let c0 = j * store.panel_width();
        let w = store.width_of(j);
        let blk = store.read_panel(j)?;
        for c in 0..w {
            let xj = x[c0 + c];
            for i in 0..m {
                let v = blk[(i, c)].to_f64();
                fro2 += v * v;
                y[i] += v * xj;
            }
        }
    }
    Ok((y, fro2.sqrt()))
}

/// Streams `Pᵀ·L·(U·x)` out of an LU-factored store (packed `dgetrf`
/// layout): one upper-trapezoid pass for `U·x`, one lower-trapezoid pass
/// for `L·(U·x)`, then the inverse interchanges.
pub fn lu_probe_apply<T: Scalar>(
    store: &TileStore<T>,
    pivots: &PivotSeq,
    x: &[f64],
) -> Result<Vec<f64>, FactorError> {
    let m = store.nrows();
    let n = store.ncols();
    let kmax = m.min(n);
    assert_eq!(x.len(), n, "probe vector length mismatch");

    // u = U·x (U is kmax × n, on and above the diagonal).
    let mut u = vec![0.0f64; kmax];
    for j in 0..store.num_panels() {
        let c0 = j * store.panel_width();
        let w = store.width_of(j);
        let rmax = (c0 + w).min(kmax);
        let blk = store.read_block(0, rmax, c0, w)?;
        for c in 0..w {
            let jg = c0 + c;
            let xj = x[jg];
            for (i, ui) in u.iter_mut().enumerate().take((jg + 1).min(kmax)) {
                *ui += blk[(i, c)].to_f64() * xj;
            }
        }
    }

    // v = L·u (L is m × kmax, unit diagonal, strictly below stored).
    let mut v = vec![0.0f64; m];
    for j in 0..store.num_panels() {
        let c0 = j * store.panel_width();
        if c0 >= kmax {
            break;
        }
        let w = store.width_of(j).min(kmax - c0);
        let blk = store.read_cols(c0, w, c0)?;
        for c in 0..w {
            let jg = c0 + c;
            let uj = u[jg];
            v[jg] += uj;
            for i in (jg + 1)..m {
                v[i] += blk[(i - c0, c)].to_f64() * uj;
            }
        }
    }

    // Pᵀ: undo the interchanges (reverse order).
    for (k, &p) in pivots.ipiv.iter().enumerate().rev() {
        v.swap(pivots.offset + k, p);
    }
    Ok(v)
}

/// Streams `Q·(R·x)` out of a QR-factored store: `R·x` in `f64` from the
/// upper trapezoid, then the panels' `Q` applied in reverse through
/// [`apply_panel_from_store`] (leaf reflectors re-read from the store).
pub fn qr_probe_apply<T: Kernel>(
    store: &TileStore<T>,
    panels: &[PanelQ<T>],
    x: &[f64],
) -> Result<Vec<f64>, FactorError> {
    let m = store.nrows();
    let n = store.ncols();
    let kmax = m.min(n);
    assert_eq!(x.len(), n, "probe vector length mismatch");

    // u = R·x, accumulated in f64.
    let mut u = vec![0.0f64; kmax];
    for j in 0..store.num_panels() {
        let c0 = j * store.panel_width();
        let w = store.width_of(j);
        let rmax = (c0 + w).min(kmax);
        let blk = store.read_block(0, rmax, c0, w)?;
        for c in 0..w {
            let jg = c0 + c;
            let xj = x[jg];
            for (i, ui) in u.iter_mut().enumerate().take((jg + 1).min(kmax)) {
                *ui += blk[(i, c)].to_f64() * xj;
            }
        }
    }

    // v = Q·[u; 0] in working precision (the Q application is itself part
    // of the factorization's error budget).
    let mut v = Matrix::<T>::zeros(m, 1);
    for (i, &ui) in u.iter().enumerate() {
        v[(i, 0)] = T::from_f64(ui);
    }
    let sh = SharedMatrix::new(v);
    for panel in panels.iter().rev() {
        apply_panel_from_store(store, panel, &sh, 0..1, Trans::No)?;
    }
    let v = sh.into_inner();
    Ok((0..m).map(|i| v[(i, 0)].to_f64()).collect())
}

/// Scaled probe residual `‖got − want‖₂ / (a_fro · ‖x‖₂)`.
pub fn probe_residual(got: &[f64], want: &[f64], a_fro: f64, x: &[f64]) -> f64 {
    assert_eq!(got.len(), want.len());
    let diff2: f64 = got.iter().zip(want).map(|(g, w)| (g - w) * (g - w)).sum();
    let x2: f64 = x.iter().map(|v| v * v).sum();
    diff2.sqrt() / (a_fro * x2.sqrt()).max(f64::MIN_POSITIVE)
}
