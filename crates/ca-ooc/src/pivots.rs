//! Deferred-interchange application for partial-height blocks.

use ca_matrix::{MatViewMut, PivotSeq, Scalar};

/// Applies `pv` to a block whose first row is global row `base`: swap
/// `offset + k ↔ ipiv[k]` in sequence with both indices rebased by `base`.
///
/// The fix-up sweep loads only rows `base..m` of an already-written
/// superpanel, so every index must lie at or below `base` — true for the
/// deferred interchanges by construction (a panel's swaps never reach
/// above its own diagonal, and only panels *below* `base` are deferred).
///
/// # Panics
/// If any interchange of `pv` touches a row above `base`.
pub fn apply_pivots_rebased<T: Scalar>(pv: &PivotSeq, base: usize, mut a: MatViewMut<'_, T>) {
    for (k, &p) in pv.ipiv.iter().enumerate() {
        let r = pv.offset + k;
        assert!(
            r >= base && p >= base,
            "interchange {r} <-> {p} reaches above the block base {base}"
        );
        a.swap_rows(r - base, p - base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::Matrix;

    #[test]
    fn rebased_application_matches_full_height() {
        let mut full = Matrix::from_fn(8, 2, |i, j| (10 * i + j) as f64);
        let mut tail = Matrix::from_fn(5, 2, |i, j| full[(3 + i, j)]);
        let mut pv = PivotSeq::new(4);
        pv.push(6);
        pv.push(7);
        pv.apply(full.view_mut());
        apply_pivots_rebased(&pv, 3, tail.view_mut());
        for i in 0..5 {
            for j in 0..2 {
                assert_eq!(tail[(i, j)], full[(3 + i, j)]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "above the block base")]
    fn out_of_range_interchange_is_rejected() {
        let mut a = Matrix::<f64>::zeros(4, 1);
        let mut pv = PivotSeq::new(2);
        pv.push(3);
        apply_pivots_rebased(&pv, 3, a.view_mut());
    }
}
