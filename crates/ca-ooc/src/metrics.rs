//! Process-wide out-of-core I/O instruments.
//!
//! The tile store is constructed deep inside drivers, far from wherever a
//! [`ca_telemetry::Registry`] lives, so the instruments are process
//! globals: every [`crate::TileStore`] feeds the same three handles, and a
//! registry *adopts* them (via [`ca_telemetry::Registry::adopt_counter`] /
//! `adopt_histogram`) so its snapshots read the live atomics with no
//! delta-sync.

use ca_telemetry::{Counter, Histogram, Registry, LATENCY_BOUNDS};
use std::sync::{Arc, OnceLock};

/// The global out-of-core I/O instruments.
#[derive(Debug)]
pub struct OocMetrics {
    /// Bytes read from tile stores since process start.
    pub bytes_read: Arc<Counter>,
    /// Bytes written to tile stores since process start.
    pub bytes_written: Arc<Counter>,
    /// Latency of each panel/chunk load, in seconds.
    pub panel_load_seconds: Arc<Histogram>,
}

/// Returns the process-wide instruments, creating them on first use.
pub fn ooc_metrics() -> &'static OocMetrics {
    static METRICS: OnceLock<OocMetrics> = OnceLock::new();
    METRICS.get_or_init(|| OocMetrics {
        bytes_read: Arc::new(Counter::new()),
        bytes_written: Arc::new(Counter::new()),
        panel_load_seconds: Arc::new(Histogram::new(LATENCY_BOUNDS)),
    })
}

/// Registers the global instruments in `registry` so its snapshots and
/// exposition include live out-of-core I/O totals.
pub fn register_ooc_metrics(registry: &Registry) {
    let m = ooc_metrics();
    registry.adopt_counter(
        "ooc_bytes_read_total",
        "Bytes read from out-of-core tile stores",
        &[],
        m.bytes_read.clone(),
    );
    registry.adopt_counter(
        "ooc_bytes_written_total",
        "Bytes written to out-of-core tile stores",
        &[],
        m.bytes_written.clone(),
    );
    registry.adopt_histogram(
        "ooc_panel_load_seconds",
        "Latency of out-of-core panel/chunk loads",
        &[],
        m.panel_load_seconds.clone(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_instruments_reflect_live_globals() {
        let reg = Registry::new();
        register_ooc_metrics(&reg);
        let before = ooc_metrics().bytes_read.get();
        ooc_metrics().bytes_read.add(4096);
        ooc_metrics().panel_load_seconds.observe(0.001);
        let snap = reg.snapshot();
        let fam = snap
            .families
            .iter()
            .find(|f| f.name == "ooc_bytes_read_total")
            .expect("family registered");
        let got = match &fam.series[0].value {
            ca_telemetry::SeriesValue::Counter(v) => *v,
            other => panic!("unexpected series value {other:?}"),
        };
        assert!(got >= before + 4096, "snapshot {got} vs live {}", before + 4096);
        // Re-registering in a second registry must reuse the same handles.
        let reg2 = Registry::new();
        register_ooc_metrics(&reg2);
        ooc_metrics().bytes_written.add(1);
        assert!(reg2.snapshot().families.iter().any(|f| f.name == "ooc_bytes_written_total"));
    }
}
