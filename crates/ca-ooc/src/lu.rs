//! Left-looking out-of-core CALU.
//!
//! [`ooc_calu`] factors a [`TileStore`]-resident matrix whose footprint
//! exceeds RAM, holding one superpanel of [`OocPlan::w`] columns in memory
//! at a time. For each resident superpanel it first *replays* every
//! previously factored inner panel — that panel's interchanges, a `b × b`
//! unit-lower triangular solve, and a rank-`b` [`ca_kernels::par_gemm`]
//! update, streamed from disk one column chunk at a time — and then runs
//! the in-core CALU panel loop (tournament pivoting via
//! [`ca_core::tslu`]) on the resident columns, exactly mirroring
//! [`ca_core::calu_seq`]'s program order.
//!
//! Because each inner panel's updates are replayed per panel in ascending
//! order with the very kernels the in-core path uses (whose per-element
//! accumulation order does not depend on how many trailing columns a call
//! covers — `par_gemm` is documented bitwise-identical to the serial
//! `gemm` at every worker count), the factors written back to the store
//! are **bitwise identical** to `calu_seq` output at the same `b`/`tr`,
//! which the `ooc` test suite asserts.
//!
//! Interchanges for columns *left* of the resident superpanel (already on
//! disk) are deferred — pure row swaps commute with nothing that touches
//! those columns again — and applied in one fix-up sweep at the end.

use crate::plan::{OocKind, OocPlan};
use crate::store::{IoSnapshot, TileStore};
use crate::pivots::apply_pivots_rebased;
use ca_core::tslu::factor_panel_limited;
use ca_core::{CaParams, FactorError, LuStats};
use ca_kernels::{par_gemm, trsm_left_lower_unit, Kernel, Trans};
use ca_matrix::PivotSeq;

/// The result of an out-of-core LU factorization. The packed `L\U` factors
/// live in the [`TileStore`] (which now holds `dgetrf`-layout output);
/// only pivots and diagnostics come back in RAM.
#[derive(Debug)]
pub struct OocLu {
    /// Global row interchanges (offset 0, length `min(m, n)`).
    pub pivots: PivotSeq,
    /// Per-inner-panel interchange sequences in panel order (offsets are
    /// the panels' global diagonal columns) — kept so `Q`-style replay and
    /// the fix-up sweep stay auditable.
    pub panel_pivots: Vec<PivotSeq>,
    /// First column where a panel hit an exactly-zero pivot, if any.
    pub breakdown: Option<usize>,
    /// Per-panel growth estimates and GEPP-fallback record.
    pub stats: LuStats,
    /// The residency plan the factorization ran under.
    pub plan: OocPlan,
    /// Tile-store transfer volume of the factorization (probe and import
    /// traffic excluded — snapshot delta across the factorization only).
    pub io: IoSnapshot,
}

/// Factors the store's matrix in place as `P·A = L·U` under `budget_bytes`
/// of resident memory. `p` carries the usual CALU parameters (`b`, `tr`,
/// tree shape, `threads` for the parallel trailing update).
pub fn ooc_calu<T: Kernel>(
    store: &TileStore<T>,
    p: &CaParams,
    budget_bytes: usize,
) -> Result<OocLu, FactorError> {
    let m = store.nrows();
    let n = store.ncols();
    let kmax = m.min(n);
    let plan = OocPlan::solve(OocKind::Lu, m, n, p, T::BYTES, budget_bytes)?;
    let io0 = store.io();

    let mut panel_pivots: Vec<PivotSeq> = Vec::with_capacity(kmax.div_ceil(p.b));
    let mut breakdown: Option<usize> = None;
    let mut stats = LuStats::default();

    for j in 0..plan.nsuper {
        let c0s = plan.super_start(j);
        let ws = plan.super_width(j);
        let mut resident = store.read_cols(c0s, ws, 0)?;

        // Replay every previously factored panel onto the resident columns,
        // in panel order — interchanges, triangular solve, rank-k update —
        // exactly as calu_seq would have applied them when it reached that
        // panel, restricted to these columns.
        for pv in &panel_pivots {
            let k0 = pv.offset;
            let k = pv.len();
            pv.apply(resident.view_mut());
            let chunk = store.read_cols(k0, k, k0)?; // [L_kk; L_below], (m-k0) × k
            {
                let u_row = resident.block_mut(k0, 0, k, ws);
                trsm_left_lower_unit(chunk.block(0, 0, k, k), u_row);
            }
            if k0 + k < m {
                let (top, below) = resident.view_mut().split_at_row(k0 + k);
                let u_row = top.as_ref().sub(k0, 0, k, ws);
                let l_below = chunk.block(k, 0, m - k0 - k, k);
                par_gemm(p.threads, Trans::No, Trans::No, -T::ONE, l_below, u_row, T::ONE, below);
            }
        }

        // In-core CALU over the resident columns (global diagonal k0).
        let mut lc = 0usize;
        while lc < ws {
            let k0 = c0s + lc;
            if k0 >= kmax {
                break;
            }
            let w = p.b.min(ws - lc);
            let k = w.min(m - k0);
            let outcome = {
                let panel = resident.block_mut(0, lc, m, w);
                factor_panel_limited(panel, k0, p.b, p.tr, p.tree, !p.leaf_blas2, p.growth_limit)
            };
            if breakdown.is_none() {
                breakdown = outcome.breakdown.map(|c| k0 + c);
            }
            stats.panel_growth.push(outcome.growth);
            if outcome.fallback {
                stats.fallback_panels.push(k0);
            }

            // Interchanges hit the trailing resident columns now. ALL
            // columns to the left — resident or on disk — are deferred to
            // the fix-up sweep: the replay of this panel onto later
            // superpanels must read its `L` rows exactly as they were at
            // factorization time, so already-factored columns stay
            // unpermuted on disk until every panel is done.
            if lc + w < ws {
                outcome.pivots.apply(resident.block_mut(0, lc + w, m, ws - lc - w));
            }

            if lc + w < ws && k > 0 {
                let (panel_cols, mut trailing) = resident.view_mut().split_at_col(lc + w);
                let lkk = panel_cols.as_ref().sub(k0, lc, k, k);
                let u_row = trailing.rb().into_sub(k0, 0, k, ws - lc - w);
                trsm_left_lower_unit(lkk, u_row);
                if k0 + k < m {
                    let l_below = panel_cols.as_ref().sub(k0 + k, lc, m - k0 - k, k);
                    let (u_row, a_below) = trailing.split_at_row(k0 + k);
                    let u_row = u_row.as_ref().sub(k0, 0, k, ws - lc - w);
                    par_gemm(
                        p.threads,
                        Trans::No,
                        Trans::No,
                        -T::ONE,
                        l_below,
                        u_row,
                        T::ONE,
                        a_below,
                    );
                }
            }
            panel_pivots.push(outcome.pivots);
            lc += w;
        }

        store.write_cols(c0s, 0, &resident)?;
    }

    // Fix-up sweep: every factored panel still lacks the row swaps of the
    // panels that came after it. Those swaps only touch rows at or below
    // the later panels' diagonals, so for panel `q` (diagonal `k0`, width
    // `w`) rows `0..k0+w` on disk are final and only rows `k0+w..m` need
    // one streamed read-swap-write pass.
    for (q, head) in panel_pivots.iter().enumerate() {
        let k0 = head.offset;
        let w = p.b.min(n - k0);
        let base = k0 + w;
        if base >= m || q + 1 == panel_pivots.len() {
            continue;
        }
        let mut blk = store.read_cols(k0, w, base)?;
        for pv in &panel_pivots[q + 1..] {
            apply_pivots_rebased(pv, base, blk.view_mut());
        }
        store.write_cols(k0, base, &blk)?;
    }

    let mut pivots = PivotSeq::new(0);
    for pv in &panel_pivots {
        pivots.extend(pv);
    }

    Ok(OocLu {
        pivots,
        panel_pivots,
        breakdown,
        stats,
        plan,
        io: store.io().since(&io0),
    })
}
