//! Memory planning: how wide a resident superpanel a byte budget affords.
//!
//! The left-looking drivers keep exactly one *superpanel* (all `m` rows of
//! `w` consecutive columns) in RAM and stream everything else:
//!
//! * a prior panel's factor block enters as one `m' × b` column chunk at a
//!   time (`m' ≤ m` rows from its diagonal down), so streaming costs one
//!   chunk buffer, never a second superpanel;
//! * CAQR additionally keeps the reduction tree's scratch (`LeafQ::t`,
//!   `NodeQ::v`/`t`) in RAM for every factored panel — bounded by
//!   `4·tr·b² `elements per panel since a partition has at most `tr`
//!   groups, so `4·tr·b·min(m,n)` elements in total, which the QR plan
//!   reserves up front.
//!
//! Superpanel width is the whole game for I/O volume: every prior panel is
//! re-read once per later superpanel, so total reads scale with `n/w` and
//! the measured traffic approaches the arXiv 0806.2159 lower bound as `w`
//! approaches its budget-allowed maximum (see
//! [`ca_kernels::traffic::ooc_lu_lower_bound`]).

use ca_core::{CaParams, FactorError};

/// Bytes kept aside for loop-local allocations (pivot vectors, stacked-R
/// scratch inside TSLU/TSQR, transfer codec buffers).
const SLACK_BYTES: usize = 1 << 20;

/// Which factorization a plan is for (QR reserves tree scratch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OocKind {
    /// Out-of-core CALU.
    Lu,
    /// Out-of-core CAQR.
    Qr,
}

/// The resolved residency plan of one out-of-core factorization.
#[derive(Clone, Debug)]
pub struct OocPlan {
    /// Factorization kind.
    pub kind: OocKind,
    /// Matrix rows.
    pub m: usize,
    /// Matrix columns.
    pub n: usize,
    /// Inner panel width `b` (identical to the in-core algorithm's).
    pub b: usize,
    /// Superpanel width: columns resident at once (multiple of `b`, except
    /// possibly narrower than `b` never — the plan fails instead).
    pub w: usize,
    /// Number of superpanels (`⌈n/w⌉`).
    pub nsuper: usize,
    /// The memory budget the plan was solved for, in bytes.
    pub budget_bytes: usize,
    /// Bytes of the resident superpanel buffer (`m·w·elem`).
    pub resident_bytes: usize,
    /// Bytes reserved for one streamed column chunk (`m·b·elem`).
    pub chunk_bytes: usize,
    /// Bytes reserved for RAM-held Q-tree scratch (QR only, `0` for LU).
    pub scratch_bytes: usize,
}

impl OocPlan {
    /// Solves the residency plan for an `m × n` factorization of
    /// `elem_bytes`-byte elements under `budget_bytes` of RAM.
    ///
    /// Fails with [`FactorError::Io`] when the budget cannot hold even one
    /// `b`-wide superpanel plus the streaming chunk (and, for QR, the tree
    /// scratch) — out-of-core needs `O(m·b)` resident memory as a floor.
    pub fn solve(
        kind: OocKind,
        m: usize,
        n: usize,
        p: &CaParams,
        elem_bytes: usize,
        budget_bytes: usize,
    ) -> Result<OocPlan, FactorError> {
        assert!(m > 0 && n > 0, "empty matrix");
        let b = p.b;
        let col_bytes = m * elem_bytes;
        let chunk_bytes = b * col_bytes;
        let scratch_bytes = match kind {
            OocKind::Lu => 0,
            OocKind::Qr => 4 * p.tr * b * m.min(n) * elem_bytes,
        };
        let fixed = chunk_bytes + scratch_bytes + SLACK_BYTES;
        let avail = budget_bytes.saturating_sub(fixed);
        // Widest multiple of b that fits, capped at the whole matrix.
        let w = (avail / col_bytes) / b * b;
        let w = w.min(n.div_ceil(b) * b).min(n.max(b));
        if w < b {
            return Err(FactorError::Io {
                op: "plan".into(),
                message: format!(
                    "memory budget {budget_bytes} B cannot hold a {m}x{b} superpanel \
                     (+{fixed} B streaming/scratch reserve) for {kind:?}; \
                     need at least {} B",
                    fixed + chunk_bytes
                ),
            });
        }
        let w = w.min(n);
        Ok(OocPlan {
            kind,
            m,
            n,
            b,
            w,
            nsuper: n.div_ceil(w),
            budget_bytes,
            resident_bytes: w * col_bytes,
            chunk_bytes,
            scratch_bytes,
        })
    }

    /// First column of superpanel `j`.
    pub fn super_start(&self, j: usize) -> usize {
        j * self.w
    }

    /// Width of superpanel `j`.
    pub fn super_width(&self, j: usize) -> usize {
        self.w.min(self.n - j * self.w)
    }

    /// Peak planned RAM use in bytes (resident + chunk + scratch + slack).
    pub fn planned_bytes(&self) -> usize {
        self.resident_bytes + self.chunk_bytes + self.scratch_bytes + SLACK_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(b: usize, tr: usize) -> CaParams {
        CaParams::new(b, tr, 1)
    }

    #[test]
    fn plan_fills_the_budget_without_exceeding_it() {
        // The acceptance-scale shape: 8192² f64 under 128 MiB.
        let p = params(64, 2);
        let plan = OocPlan::solve(OocKind::Lu, 8192, 8192, &p, 8, 128 << 20).unwrap();
        assert!(plan.planned_bytes() <= 128 << 20, "plan overshoots: {plan:?}");
        assert_eq!(plan.w % 64, 0);
        // The matrix (512 MiB) is ≥ 4× the budget, so several superpanels.
        assert!(plan.nsuper >= 4, "expected an actually-out-of-core plan: {plan:?}");
        // And the width should not be pessimal: at least half the
        // theoretical max budget/(m·elem).
        assert!(plan.w >= 1024, "superpanel too narrow: {plan:?}");
    }

    #[test]
    fn qr_plan_reserves_tree_scratch() {
        let p = params(64, 2);
        let lu = OocPlan::solve(OocKind::Lu, 8192, 8192, &p, 8, 128 << 20).unwrap();
        let qr = OocPlan::solve(OocKind::Qr, 8192, 8192, &p, 8, 128 << 20).unwrap();
        assert!(qr.scratch_bytes > 0 && qr.w < lu.w, "lu {lu:?} qr {qr:?}");
        assert!(qr.planned_bytes() <= 128 << 20);
    }

    #[test]
    fn in_core_sized_budget_degenerates_to_one_superpanel() {
        let p = params(16, 2);
        let plan = OocPlan::solve(OocKind::Lu, 100, 80, &p, 8, 1 << 30).unwrap();
        assert_eq!(plan.nsuper, 1);
        assert!(plan.w >= 80);
    }

    #[test]
    fn impossible_budget_is_refused_with_io_error() {
        let p = params(64, 2);
        let e = OocPlan::solve(OocKind::Lu, 1 << 20, 1 << 20, &p, 8, 1 << 20).unwrap_err();
        assert!(matches!(e, FactorError::Io { ref op, .. } if op == "plan"), "{e}");
    }

    #[test]
    fn super_geometry_covers_all_columns() {
        let p = params(8, 2);
        let plan = OocPlan::solve(OocKind::Qr, 256, 200, &p, 8, 200 * 1024 + (1 << 21)).unwrap();
        let mut cols = 0;
        for j in 0..plan.nsuper {
            assert_eq!(plan.super_start(j), cols);
            cols += plan.super_width(j);
        }
        assert_eq!(cols, 200);
    }
}
