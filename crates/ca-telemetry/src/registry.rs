//! Named metric families with label dimensions, and their exposition.
//!
//! The registry itself is a map guarded by a mutex, but the mutex is only
//! taken to *register* (get-or-create) a series or to take a snapshot. Hot
//! paths resolve their `Arc<Counter>`/`Arc<Histogram>` handles once (per
//! job admission, per tenant, …) and then update them lock-free.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// What kind of metric a family holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MetricKind {
    /// Monotonic counter (`_total` convention in Prometheus).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Log-scale bucket histogram.
    Histogram,
}

impl MetricKind {
    fn prometheus_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the rendered label pairs (sorted by insertion: callers pass
    /// labels in a fixed order, so identical series always collide).
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// A collection of metric families addressed by name + label set.
///
/// Series handles are `Arc`s shared with the caller; dropping the registry
/// does not invalidate them, and a snapshot observes whatever the atomics
/// hold at that instant.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.families.lock().expect("registry poisoned").len();
        write!(f, "Registry({n} families)")
    }
}

fn label_vec(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Metric,
        extract: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut fams = self.families.lock().expect("registry poisoned");
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            fam.kind, kind,
            "metric family {name:?} registered as {:?}, requested as {kind:?}",
            fam.kind
        );
        let metric = fam.series.entry(label_vec(labels)).or_insert_with(make);
        extract(metric).expect("kind checked above")
    }

    /// Gets or creates the counter series `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Counter,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates the gauge series `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Gauge,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Gets or creates the histogram series `name{labels}` over `bounds`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &'static [f64],
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Histogram,
            || Metric::Histogram(Arc::new(Histogram::new(bounds))),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Registers an *existing* counter handle as the series `name{labels}`.
    ///
    /// Process-global instruments (e.g. the out-of-core byte counters that
    /// live in `ca-ooc` independently of any registry) can be adopted into
    /// a registry this way: snapshots then read the shared atomics live, no
    /// delta-sync needed. If the series already exists the registered
    /// handle is returned and `handle` is dropped.
    pub fn adopt_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        handle: Arc<Counter>,
    ) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Counter,
            move || Metric::Counter(handle),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers an *existing* histogram handle as the series
    /// `name{labels}` — the histogram analogue of [`Registry::adopt_counter`].
    pub fn adopt_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        handle: Arc<Histogram>,
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            MetricKind::Histogram,
            move || Metric::Histogram(handle),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Point-in-time copy of every family and series.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let fams = self.families.lock().expect("registry poisoned");
        let families = fams
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                series: fam
                    .series
                    .iter()
                    .map(|(labels, metric)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match metric {
                            Metric::Counter(c) => SeriesValue::Counter(c.get()),
                            Metric::Gauge(g) => SeriesValue::Gauge(g.get()),
                            Metric::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect();
        RegistrySnapshot { families }
    }
}

/// Snapshot of one labeled series.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SeriesSnapshot {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: SeriesValue,
}

/// The value part of a series snapshot.
#[derive(Clone, Debug)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

// The vendored serde derive only handles fieldless enums, so the payload
// variants serialize by hand into a tagged single-key object.
impl serde::Serialize for SeriesValue {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        let (tag, v) = match self {
            SeriesValue::Counter(v) => ("counter", Value::Number(*v as f64)),
            SeriesValue::Gauge(v) => ("gauge", Value::Number(*v)),
            SeriesValue::Histogram(h) => ("histogram", h.to_value()),
        };
        Value::Object(vec![(tag.to_string(), v)])
    }
}

impl serde::Deserialize for SeriesValue {
    fn deserialize(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        use serde::value::Error;
        v.as_object().ok_or_else(|| Error::mismatch("SeriesValue object", v))?;
        if let Some(c) = v.get("counter") {
            let n = c.as_u64().ok_or_else(|| Error::mismatch("counter number", c))?;
            return Ok(SeriesValue::Counter(n));
        }
        if let Some(g) = v.get("gauge") {
            let n = g.as_f64().ok_or_else(|| Error::mismatch("gauge number", g))?;
            return Ok(SeriesValue::Gauge(n));
        }
        if let Some(h) = v.get("histogram") {
            return Ok(SeriesValue::Histogram(HistogramSnapshot::deserialize(h)?));
        }
        Err(Error::mismatch("counter|gauge|histogram key", v))
    }
}

/// Snapshot of one metric family.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FamilySnapshot {
    /// Family name (Prometheus metric name).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// All labeled series in the family.
    pub series: Vec<SeriesSnapshot>,
}

/// Snapshot of a whole [`Registry`].
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct RegistrySnapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, one sample line per series; histograms
    /// expand to cumulative `_bucket{le=…}` samples plus `_sum`/`_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.prometheus_name()));
            for s in &fam.series {
                match &s.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&format!(
                            "{}{} {v}\n",
                            fam.name,
                            render_labels(&s.labels, None)
                        ));
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            render_labels(&s.labels, None),
                            fmt_f64(*v)
                        ));
                    }
                    SeriesValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, &c) in h.counts.iter().enumerate() {
                            cum += c;
                            let le = if i < h.bounds.len() { h.bounds[i] } else { f64::INFINITY };
                            out.push_str(&format!(
                                "{}_bucket{} {cum}\n",
                                fam.name,
                                render_labels(&s.labels, Some(("le", fmt_f64(le))))
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            render_labels(&s.labels, None),
                            fmt_f64(h.sum_s)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            render_labels(&s.labels, None),
                            h.count
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_the_cell() {
        let r = Registry::new();
        let a = r.counter("jobs_total", "jobs", &[("tenant", "t0")]);
        let b = r.counter("jobs_total", "jobs", &[("tenant", "t0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("jobs_total", "jobs", &[("tenant", "t1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x", "x", &[]);
        let _ = r.gauge("x", "x", &[]);
    }

    #[test]
    fn prometheus_rendering_has_headers_and_cumulative_buckets() {
        let r = Registry::new();
        r.counter("serve_jobs_total", "Jobs", &[("tenant", "a"), ("class", "lu")]).add(3);
        r.gauge("serve_occupancy", "Occupancy", &[]).set(0.5);
        let h = r.histogram("serve_exec_seconds", "Exec latency", &[("tenant", "a")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE serve_jobs_total counter"), "{text}");
        assert!(text.contains("serve_jobs_total{tenant=\"a\",class=\"lu\"} 3"), "{text}");
        assert!(text.contains("serve_occupancy 0.5"), "{text}");
        assert!(text.contains("serve_exec_seconds_bucket{tenant=\"a\",le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("serve_exec_seconds_bucket{tenant=\"a\",le=\"1\"} 2"), "{text}");
        assert!(text.contains("serve_exec_seconds_bucket{tenant=\"a\",le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("serve_exec_seconds_count{tenant=\"a\"} 3"), "{text}");
    }

    #[test]
    fn adopted_handles_are_read_live_by_snapshots() {
        let r = Registry::new();
        let external = Arc::new(Counter::new());
        external.add(7);
        let adopted = r.adopt_counter("ooc_bytes_read_total", "bytes", &[], external.clone());
        assert_eq!(adopted.get(), 7);
        external.add(3);
        match &r.snapshot().families[0].series[0].value {
            SeriesValue::Counter(10) => {}
            v => panic!("unexpected {v:?}"),
        }
        // Re-adoption returns the registered handle, not a new series.
        let again = r.adopt_counter("ooc_bytes_read_total", "bytes", &[], Arc::new(Counter::new()));
        again.inc();
        assert_eq!(external.get(), 11);

        let h = Arc::new(Histogram::default());
        h.observe(0.01);
        r.adopt_histogram("ooc_panel_load_seconds", "load", &[], h.clone());
        let snap = r.snapshot();
        let fam = snap.families.iter().find(|f| f.name == "ooc_panel_load_seconds").unwrap();
        match &fam.series[0].value {
            SeriesValue::Histogram(hs) => assert_eq!(hs.count, 1),
            v => panic!("unexpected {v:?}"),
        }
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let r = Registry::new();
        r.counter("a_total", "a", &[("k", "v")]).inc();
        r.histogram("lat", "lat", &[], &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.families.len(), 2);
        match &back.families[0].series[0].value {
            SeriesValue::Counter(1) => {}
            v => panic!("unexpected {v:?}"),
        }
    }
}
