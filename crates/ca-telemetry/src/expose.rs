//! Crash-safe snapshot file writes.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` via a unique temporary file in the same
/// directory followed by an atomic rename, so a concurrent reader (or a
/// crash mid-write) never observes a partial file.
///
/// The temporary name embeds the process id and a global sequence number,
/// so concurrent writers to the same target cannot collide on the staging
/// file; last rename wins.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp_name = format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.flush()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_and_never_truncates() {
        let dir = std::env::temp_dir().join(format!("ca_telemetry_test_{}", std::process::id()));
        let path = dir.join("snap.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        // No stray temp files left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "{strays:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
