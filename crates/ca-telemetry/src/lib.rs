//! Always-on telemetry primitives for the ca-factor workspace.
//!
//! The serve tier (and the schedulers underneath it) need live numbers, not
//! only post-mortem profiles: counters and latency histograms that are cheap
//! enough to update on every task dispatch, plus bounded event buffers that
//! retain the last moments before a failure. This crate provides the
//! domain-neutral pieces:
//!
//! - [`Counter`] / [`Gauge`] — single atomic cells updated with `Relaxed`
//!   ordering; an increment is one `fetch_add` with no locks.
//! - [`Histogram`] — a fixed-bucket log-scale histogram (the same shape as
//!   the PR-2 `LatencyStats` dispatch histogram) whose buckets are atomics,
//!   so concurrent `observe` calls never contend on a lock. Quantiles are
//!   estimated from the bucket counts at snapshot time.
//! - [`Registry`] — a named collection of metric families with label
//!   dimensions (tenant, job class, …). Registration takes a lock once;
//!   the returned `Arc` handles are then updated lock-free on hot paths.
//!   Snapshots render as Prometheus text format or JSON.
//! - [`Ring`] — a bounded FIFO used for per-worker flight recorders; when
//!   full, the oldest entry is dropped and counted.
//! - [`write_atomic`] — write-to-temp + atomic rename so snapshot readers
//!   never observe a partially written file.
//!
//! Domain-specific instrumentation (scheduler counters, the flight-recorder
//! event vocabulary, per-tenant serve metrics) lives in `ca-sched::telemetry`
//! and `ca-serve::metrics`; this crate knows nothing about task graphs.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod expose;
mod metrics;
mod registry;
mod ring;

pub use expose::write_atomic;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HistogramSummary, LATENCY_BOUNDS};
pub use registry::{
    FamilySnapshot, MetricKind, Registry, RegistrySnapshot, SeriesSnapshot, SeriesValue,
};
pub use ring::Ring;
