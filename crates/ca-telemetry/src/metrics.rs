//! Atomic metric cells: counters, gauges, and log-scale histograms.
//!
//! Everything here is updated with `Relaxed` atomics — telemetry never
//! synchronizes application memory, it only has to be eventually consistent
//! with itself. A snapshot taken while updates are in flight may therefore
//! be momentarily off by in-flight increments (e.g. a histogram's `count`
//! can lead its bucket sum by the updates between the two loads); exposition
//! consumers must not assume exact cross-field invariants.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A settable `f64` gauge (occupancy, GF/s, queue depth, …).
///
/// The value is stored as its IEEE-754 bit pattern in an `AtomicU64`.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Adds `v` (compare-and-swap loop; gauges are not hot-path metrics).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// Default bucket upper bounds (seconds) for latency histograms.
///
/// Log-scale like the PR-2 `LatencyStats` dispatch histogram, but extended
/// above one second because job-level queue/total latencies under load
/// routinely exceed it. An implicit `+Inf` bucket follows the last bound.
pub const LATENCY_BOUNDS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 100.0,
];

/// A fixed-bucket histogram with atomic bucket counters.
///
/// `observe` is lock-free: one linear scan over the (static) bounds plus a
/// handful of `Relaxed` `fetch_add`/`fetch_max` operations. Quantiles are
/// estimated at snapshot time by linear interpolation inside the bucket
/// containing the requested rank, clamped to the observed `[min, max]`
/// range, so small samples still produce sane summaries.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One slot per bound plus a trailing `+Inf` slot.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observed values in nanoseconds (fits ~584 years of seconds).
    sum_ns: AtomicU64,
    /// Bit patterns of the min/max observed values. Non-negative IEEE-754
    /// doubles compare the same as their bit patterns, so `fetch_min`/
    /// `fetch_max` on the bits maintain the float extrema.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(LATENCY_BOUNDS)
    }
}

impl Histogram {
    /// Creates an empty histogram over `bounds` (strictly increasing upper
    /// bounds; an `+Inf` bucket is appended automatically).
    pub fn new(bounds: &'static [f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation. Negative or NaN values are clamped to zero
    /// (latencies are never negative; clock skew must not poison the state).
    #[inline]
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let slot = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_ns.fetch_add((v * 1e9) as u64, Relaxed);
        let bits = v.to_bits();
        self.min_bits.fetch_min(bits, Relaxed);
        self.max_bits.fetch_max(bits, Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Consistent-enough point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let count = counts.iter().sum();
        let min = f64::from_bits(self.min_bits.load(Relaxed));
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts,
            count,
            sum_s: self.sum_ns.load(Relaxed) as f64 / 1e9,
            min_s: if min.is_finite() { min } else { 0.0 },
            max_s: f64::from_bits(self.max_bits.load(Relaxed)),
        }
    }

    /// Five-number summary (count, mean, p50/p95/p99, max) via [`HistogramSnapshot`].
    pub fn summary(&self) -> HistogramSummary {
        self.snapshot().summary()
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds in seconds (exclusive of the trailing `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (the last slot
    /// is the `+Inf` bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values in seconds.
    pub sum_s: f64,
    /// Smallest observed value (0 when empty).
    pub min_s: f64,
    /// Largest observed value (0 when empty).
    pub max_s: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0 < q <= 1`) by locating the bucket that
    /// contains the ceil(q·count)-th observation and interpolating linearly
    /// between its lower and upper bound. The estimate is clamped to the
    /// observed `[min, max]`, which makes single-bucket histograms exact.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = if i < self.bounds.len() { self.bounds[i] } else { self.max_s };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min_s, self.max_s);
            }
            seen += c;
        }
        self.max_s
    }

    /// Mean of the observed values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Five-number summary used by `ServiceStats`.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_s: self.mean(),
            p50_s: self.quantile(0.50),
            p95_s: self.quantile(0.95),
            p99_s: self.quantile(0.99),
            max_s: self.max_s,
        }
    }
}

/// Summary statistics derived from a [`HistogramSnapshot`].
///
/// Percentiles are bucket estimates (see [`HistogramSnapshot::quantile`]),
/// not exact order statistics; `count`, `mean_s` and `max_s` are exact.
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Exact mean in seconds.
    pub mean_s: f64,
    /// Estimated median in seconds.
    pub p50_s: f64,
    /// Estimated 95th percentile in seconds.
    pub p95_s: f64,
    /// Estimated 99th percentile in seconds.
    pub p99_s: f64,
    /// Exact maximum in seconds.
    pub max_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-0.5);
        assert!((g.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_partitions_and_summarizes() {
        let h = Histogram::default();
        for v in [5e-7, 5e-6, 2e-3, 0.3, 200.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.counts.iter().sum::<u64>(), 5);
        assert_eq!(*s.counts.last().unwrap(), 1, "200s lands in +Inf");
        assert!((s.max_s - 200.0).abs() < 1e-12);
        assert!((s.min_s - 5e-7).abs() < 1e-18);
        assert!(s.summary().p50_s <= s.summary().p99_s);
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let h = Histogram::default();
        // 100 observations at 3 ms: every quantile must stay inside the
        // (2.5 ms, 5 ms] bucket, and the clamp makes min/max exact.
        for _ in 0..100 {
            h.observe(3e-3);
        }
        let s = h.snapshot();
        for q in [0.5, 0.95, 0.99] {
            let est = s.quantile(q);
            assert!((est - 3e-3).abs() < 1e-12, "q={q} est={est}");
        }
        assert!((s.mean() - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates_across_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(1e-4); // (1e-5, 1e-4] bucket
        }
        for _ in 0..10 {
            h.observe(0.9); // (0.5, 1.0] bucket
        }
        let s = h.snapshot();
        assert!(s.quantile(0.5) <= 1e-4 + 1e-12);
        let p99 = s.quantile(0.99);
        assert!(p99 > 0.5 && p99 <= 0.9 + 1e-12, "p99={p99}");
    }

    #[test]
    fn pathological_observations_are_clamped() {
        let h = Histogram::default();
        h.observe(f64::NAN);
        h.observe(-3.0);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.counts[0], 3, "all clamped to zero -> first bucket");
        assert_eq!(s.max_s, 0.0);
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 4000);
    }
}
