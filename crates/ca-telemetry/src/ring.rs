//! Bounded FIFO ring used by per-worker flight recorders.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A fixed-capacity FIFO that drops (and counts) the oldest entry when full.
///
/// The ring is internally a mutex-guarded deque, but flight-recorder usage
/// gives every worker its own ring: the only cross-thread access is a
/// snapshot, so the mutex is uncontended on the hot path.
#[derive(Debug)]
pub struct Ring<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    dropped: u64,
}

impl<T: Clone> Ring<T> {
    /// Creates an empty ring holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner { buf: VecDeque::with_capacity(capacity), dropped: 0 }),
            capacity,
        }
    }

    /// Appends `v`, evicting the oldest entry when at capacity.
    pub fn push(&self, v: T) {
        let mut g = self.inner.lock().expect("ring poisoned");
        if g.buf.len() == self.capacity {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(v);
    }

    /// Copies out the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.lock().expect("ring poisoned").buf.iter().cloned().collect()
    }

    /// Number of entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring poisoned").dropped
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_fifo() {
        let r = Ring::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let r = Ring::new(0);
        r.push("a");
        r.push("b");
        assert_eq!(r.snapshot(), vec!["b"]);
    }
}
