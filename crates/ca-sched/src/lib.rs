//! # ca-sched
//!
//! Dynamic task-graph runtime for the `ca-factor` workspace — the scheduling
//! substrate of multithreaded CALU/CAQR (Donfack, Grigori & Gupta, IPDPS
//! 2010, §III "Task scheduling").
//!
//! Two executors share one [`TaskGraph`] representation:
//!
//! * [`run_graph`] — a real worker pool: a shared priority queue of ready
//!   tasks, drained by `nthreads` OS threads. Priorities encode the paper's
//!   lookahead-of-1 rule (panel tasks and the update of block column `K+1`
//!   outrank other updates).
//! * [`simulate`] — a deterministic list-scheduling discrete-event simulator
//!   with `P` virtual cores and a pluggable cost model. This is the
//!   hardware-substitution layer that stands in for the paper's 8-core Xeon
//!   and 16-core Opteron machines (see DESIGN.md §2).
//!
//! Both produce a [`Timeline`] renderable as an ASCII Gantt chart
//! ([`ascii_gantt`]) in the style of the paper's Figures 2–4.
//!
//! ## Failure semantics
//!
//! Jobs return [`TaskResult`]; panics are caught and converted into
//! failures. A failed task never releases its successors — the executors
//! cancel its **transitive successors**, drain every independent task, and
//! the `try_*` entry points ([`try_run_graph`], [`try_run_graph_stealing`],
//! [`try_simulate`]) report the first failure as an [`ExecError`] naming
//! the failed task, its label, its worker lane, and the cancelled set.
//! [`FaultPlan`] injects failures deterministically for testing.
//!
//! ## Recovery
//!
//! Wrapping a task body with [`retrying_job`] / [`retrying_dyn_job`] adds
//! the *recover* half: the wrapper snapshots the task's declared write-set
//! (resolved from the [`AccessMap`] by [`write_set`]), and on failure or
//! panic restores it and replays the body under a [`RetryPolicy`] —
//! successors are cancelled only once retries are exhausted. [`ChaosPlan`]
//! extends the fault harness with seeded rate-based injection of failures,
//! panics, delays, and silent data corruption.
//!
//! ## Profiling
//!
//! Every executor has a `profile_*` twin ([`profile_run_graph`],
//! [`profile_run_graph_stealing`], [`profile_simulate`]) that records the
//! full task lifecycle (ready → dispatch → start → end, steal counters,
//! queue-depth samples) into a [`Profile`]. [`Profile::metrics`] derives
//! dispatch-latency distributions, per-[`KernelClass`] achieved GFlop/s
//! (roofline attribution), critical-path scheduling efficiency, and the
//! lookahead-effectiveness metric; [`Profile::chrome_trace`] emits a Chrome
//! trace with DAG flow events and counter tracks.

//! ## Verification
//!
//! The builders' block declarations are retained in an [`AccessMap`]
//! ([`BlockTracker::into_access_map`]); [`verify_graph`] statically proves
//! every conflicting block pair is ordered by a happens-before path, and
//! the `*_checked` executors ([`try_run_graph_checked`],
//! [`try_run_graph_stealing_checked`], [`try_simulate_checked`]) audit the
//! actual element accesses at run time through a
//! [`ca_matrix::ShadowRegistry`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod blockdeps;
mod checked;
mod fault;
mod footprint;
mod graph;
mod multigraph;
mod persist;
mod pool;
mod pool_ws;
mod profile;
mod retry;
mod sim;
mod task;
mod telemetry;
mod trace;
mod verify;

pub use blockdeps::{row_blocks, BlockTracker};
pub use checked::{
    build_shadow_registry, run_graph_checked, try_run_graph_checked,
    try_run_graph_stealing_checked, try_simulate_checked, CheckedError,
};
pub use footprint::{AccessMap, BlockRegion};
pub use verify::{
    reduce_transitive_edges, verify_graph, verify_graph_with, ConflictKind, EdgeFinding,
    Granularity, LintReport, ShadowedWrite, SoundnessError, VerifyOptions, VerifyReport,
    CLOSURE_TASK_LIMIT,
};
pub use fault::{ExecError, FaultAction, FaultPlan, TaskFailure, TaskResult};
pub use graph::TaskGraph;
pub use multigraph::{
    dyn_job, CancelReason, DynJob, JobId, JobOptions, JobOutcome, JobReport, JobWatch,
    MultiFrontier,
};
pub use persist::persistent_pool_threads;
pub use pool::{
    job, profile_run_graph, run_graph, run_graph_persistent, run_graph_scoped,
    try_run_graph, try_run_graph_persistent, try_run_graph_with_faults, ExecStats, Job,
};
pub use pool_ws::{
    profile_run_graph_stealing, run_graph_stealing, try_run_graph_stealing,
    try_run_graph_stealing_persistent, try_run_graph_stealing_with_faults,
};
pub use profile::{
    ClassMetrics, KindMetrics, LatencyStats, LookaheadMetrics, PanelWait, Profile, QueueSample,
    SchedMetrics, StealStats, TaskRecord,
};
pub use retry::{
    retrying_dyn_job, retrying_job, write_set, ChaosAction, ChaosPlan, ChaosProfile,
    PanicHookGuard, RecoveryCounters, RecoveryStats, RetryPolicy, WriteSet,
};
pub use sim::{profile_simulate, simulate, simulate_uniform, try_simulate};
pub use task::{KernelClass, TaskId, TaskKind, TaskLabel, TaskMeta};
pub use telemetry::{
    record_event, sched_counters, set_thread_recorder, FlightEvent, FlightEventKind,
    FlightRecorder, SchedCounters, SchedCountersSnapshot,
};
pub use trace::{
    ascii_gantt, chrome_trace_json, chrome_trace_json_with_marks, Span, Timeline, TimelineError,
};
