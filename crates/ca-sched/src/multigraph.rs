//! Multi-graph frontier: one persistent worker pool executing many task
//! graphs ("jobs") concurrently.
//!
//! The one-shot executors ([`crate::run_graph`], [`crate::run_graph_stealing`])
//! run exactly one DAG to quiescence. A serving workload instead has many
//! DAGs in flight at once; the paper's dynamic-scheduling insight — tasks
//! from *different panel steps* interleave on a shared pool via priorities —
//! generalizes directly to tasks from *different requests*:
//!
//! * **Within a job** the paper's lookahead priorities are preserved: each
//!   job keeps its own ready heap ordered by [`TaskMeta::priority`] (then
//!   insertion order), exactly like the one-shot priority-queue pool.
//! * **Across jobs** dispatch uses stride scheduling (weighted fair
//!   queueing): every job carries a *pass* value advanced by
//!   `flops / weight` per dispatched task, and workers always serve the
//!   runnable job with the smallest pass. A weight-2 job therefore receives
//!   twice the flops of a weight-1 job while both are runnable, and a newly
//!   admitted job starts at the current minimum pass so it can neither
//!   starve nor monopolize.
//!
//! Failure semantics match the one-shot pools, scoped per job: a failed or
//! panicking task cancels its transitive successors *within its own job*
//! and never affects other jobs. Jobs can also be cancelled as a whole
//! (user cancel, deadline, load shedding, shutdown): undispatched tasks are
//! dropped, in-flight tasks run to completion, and the job finalizes with a
//! [`JobOutcome::Cancelled`]. Deadlines are enforced at dispatch points, so
//! a deadline never preempts a running kernel.

use crate::fault::{ExecError, TaskResult};
use crate::graph::TaskGraph;
use crate::pool::panic_message;
use crate::task::{TaskId, TaskLabel, TaskMeta};
use crate::telemetry::{self, FlightEventKind, FlightRecorder};
use crate::trace::{Span, Timeline};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Identifies a job (a submitted task graph) for its whole lifetime.
pub type JobId = u64;

/// A task body owned by the frontier: unlike the scoped [`crate::Job`],
/// jobs outlive the submitting call, so bodies must be `'static` (capture
/// `Arc`s, not references).
pub type DynJob = Box<dyn FnOnce() -> TaskResult + Send + 'static>;

/// Wraps an infallible closure as a [`DynJob`].
pub fn dyn_job(f: impl FnOnce() + Send + 'static) -> DynJob {
    Box::new(move || {
        f();
        Ok(())
    })
}

/// Per-job submission options.
#[derive(Clone, Copy, Debug)]
pub struct JobOptions {
    /// Fair-share weight (> 0): relative flop share while runnable.
    pub weight: f64,
    /// Deadline relative to submission; the job is cancelled with
    /// [`CancelReason::Deadline`] at the first dispatch point past it.
    pub deadline: Option<Duration>,
    /// Opaque caller tag echoed verbatim in the [`JobReport`] (e.g. a
    /// member count for fused batch jobs). The frontier never reads it.
    pub tag: u64,
}

impl Default for JobOptions {
    fn default() -> Self {
        Self { weight: 1.0, deadline: None, tag: 0 }
    }
}

impl JobOptions {
    /// Sets the fair-share weight.
    pub fn with_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0 && w.is_finite(), "weight must be positive");
        self.weight = w;
        self
    }

    /// Sets the relative deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the opaque caller tag.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// Why a job was cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// Explicit [`MultiFrontier::cancel`].
    User,
    /// The job's deadline expired before it finished.
    Deadline,
    /// Load shedding evicted the job from the queue.
    Shed,
    /// The frontier was shut down with the job still pending.
    Shutdown,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::User => write!(f, "cancelled by caller"),
            CancelReason::Deadline => write!(f, "deadline exceeded"),
            CancelReason::Shed => write!(f, "shed under load"),
            CancelReason::Shutdown => write!(f, "service shutting down"),
        }
    }
}

/// Terminal state of a job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Every task ran successfully.
    Completed,
    /// A task failed or panicked; its transitive successors within the job
    /// were cancelled. Carries the first failure.
    Failed(ExecError),
    /// The job was cancelled as a whole before completing.
    Cancelled(CancelReason),
}

impl JobOutcome {
    /// `true` iff every task of the job ran successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed)
    }
}

/// Lifecycle report delivered when a job reaches a terminal state. All
/// times are seconds since the frontier's epoch.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Caller tag from [`JobOptions::tag`], echoed verbatim.
    pub tag: u64,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Submission time.
    pub submitted: f64,
    /// First task dispatch, if any task ever ran.
    pub first_dispatch: Option<f64>,
    /// Finalization time.
    pub finished: f64,
    /// Tasks that executed.
    pub tasks_run: usize,
    /// Tasks dropped without running (failure closure or job cancel).
    pub tasks_cancelled: usize,
    /// Flops of the executed tasks (per their [`TaskMeta`] estimates).
    pub flops: f64,
}

impl JobReport {
    /// Seconds spent queued before the first task dispatched (the whole
    /// lifetime if nothing ever ran).
    pub fn queue_seconds(&self) -> f64 {
        self.first_dispatch.unwrap_or(self.finished) - self.submitted
    }

    /// Seconds from first dispatch to finalization (0 if nothing ran).
    pub fn exec_seconds(&self) -> f64 {
        self.first_dispatch.map_or(0.0, |d| self.finished - d)
    }

    /// Seconds from submission to finalization.
    pub fn total_seconds(&self) -> f64 {
        self.finished - self.submitted
    }
}

/// Completion watch for one job: cloneable, fulfilled exactly once.
#[derive(Clone)]
pub struct JobWatch {
    inner: Arc<WatchInner>,
}

struct WatchInner {
    slot: Mutex<Option<JobReport>>,
    cv: Condvar,
}

impl JobWatch {
    fn new() -> Self {
        Self { inner: Arc::new(WatchInner { slot: Mutex::new(None), cv: Condvar::new() }) }
    }

    fn fulfill(&self, report: JobReport) {
        let mut slot = self.inner.slot.lock().expect("watch lock");
        debug_assert!(slot.is_none(), "job finalized twice");
        *slot = Some(report);
        self.inner.cv.notify_all();
    }

    /// The report, if the job already finished.
    pub fn try_get(&self) -> Option<JobReport> {
        self.inner.slot.lock().expect("watch lock").clone()
    }

    /// `true` once the job reached a terminal state.
    pub fn is_done(&self) -> bool {
        self.inner.slot.lock().expect("watch lock").is_some()
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> JobReport {
        let mut slot = self.inner.slot.lock().expect("watch lock");
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = self.inner.cv.wait(slot).expect("watch lock");
        }
    }

    /// Blocks up to `timeout`; `None` if the job is still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobReport> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.inner.slot.lock().expect("watch lock");
        loop {
            if let Some(r) = slot.as_ref() {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) =
                self.inner.cv.wait_timeout(slot, deadline - now).expect("watch lock");
            slot = guard;
        }
    }
}

/// Ready-heap entry: max-heap on priority, then insertion order (lower task
/// id first) — identical to the one-shot priority pool.
#[derive(PartialEq, Eq)]
struct Ready {
    priority: i64,
    task: TaskId,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.priority.cmp(&other.priority).then(other.task.cmp(&self.task))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

struct JobState {
    metas: Vec<TaskMeta>,
    slots: Vec<Option<DynJob>>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<usize>,
    ready: BinaryHeap<Ready>,
    cancelled: Vec<bool>,
    /// Tasks not yet accounted (neither run nor dropped). In-flight tasks
    /// still count until their completion is recorded.
    remaining: usize,
    in_flight: usize,
    /// Stride-scheduling pass value (advanced by flops/weight at dispatch).
    pass: f64,
    weight: f64,
    tag: u64,
    /// Absolute deadline (seconds since epoch).
    deadline: Option<f64>,
    submitted: f64,
    first_dispatch: Option<f64>,
    tasks_run: usize,
    tasks_cancelled: usize,
    flops_done: f64,
    failure: Option<ExecError>,
    cancel_reason: Option<CancelReason>,
    watch: JobWatch,
}

impl JobState {
    /// Whether a worker can dispatch a task of this job right now.
    fn runnable(&self) -> bool {
        !self.ready.is_empty()
    }
}

struct State {
    jobs: HashMap<JobId, JobState>,
    shutdown: bool,
}

/// Hook invoked (off-lock) with every finalized job's report.
type CompletionHook = Box<dyn Fn(&JobReport) + Send + Sync>;

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    epoch: Instant,
    next_job: AtomicU64,
    nworkers: usize,
    lanes: Vec<Mutex<Vec<Span>>>,
    tracing: AtomicBool,
    busy_nanos: AtomicU64,
    on_complete: Option<CompletionHook>,
    /// Optional flight recorder (attached once via
    /// [`MultiFrontier::set_flight_recorder`]).
    recorder: OnceLock<Arc<FlightRecorder>>,
}

impl Inner {
    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Counts the job's terminal outcome and records it on the flight
    /// recorder's external lane.
    fn note_job_end(&self, report: &JobReport) {
        let c = telemetry::sched_counters();
        let kind = match &report.outcome {
            JobOutcome::Completed => {
                c.jobs_completed.inc();
                FlightEventKind::JobDone
            }
            JobOutcome::Failed(_) => {
                c.jobs_failed.inc();
                FlightEventKind::JobFail
            }
            JobOutcome::Cancelled(reason) => {
                c.jobs_cancelled.inc();
                match reason {
                    CancelReason::Shed => {
                        c.jobs_shed.inc();
                        FlightEventKind::JobShed
                    }
                    CancelReason::Deadline => {
                        c.jobs_deadline_missed.inc();
                        FlightEventKind::JobDeadline
                    }
                    CancelReason::User | CancelReason::Shutdown => FlightEventKind::JobCancel,
                }
            }
        };
        if let Some(rec) = self.recorder.get() {
            rec.record(rec.nworkers(), kind, report.job, None);
        }
    }

    /// Delivers finalized reports: hook first (so aggregated stats are
    /// current before waiters wake), then the watch. Never called with the
    /// state lock held.
    fn deliver(&self, done: Vec<(JobReport, JobWatch)>) {
        for (report, watch) in done {
            self.note_job_end(&report);
            if let Some(hook) = &self.on_complete {
                hook(&report);
            }
            watch.fulfill(report);
        }
    }
}

/// A persistent pool of workers multiplexing many task graphs (see the
/// module docs for the scheduling policy).
pub struct MultiFrontier {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// How long an idle worker sleeps between deadline sweeps.
const IDLE_SWEEP: Duration = Duration::from_millis(25);

impl MultiFrontier {
    /// Starts `nworkers` dedicated worker threads.
    ///
    /// # Panics
    /// Panics if `nworkers == 0`.
    pub fn new(nworkers: usize) -> Self {
        Self::build(nworkers, None)
    }

    /// [`MultiFrontier::new`] with a completion hook, invoked once per
    /// finalized job (from a worker thread, before the job's
    /// [`JobWatch`] is fulfilled, with no internal lock held).
    pub fn with_hook(nworkers: usize, hook: CompletionHook) -> Self {
        Self::build(nworkers, Some(hook))
    }

    fn build(nworkers: usize, on_complete: Option<CompletionHook>) -> Self {
        assert!(nworkers > 0, "need at least one worker");
        let inner = Arc::new(Inner {
            state: Mutex::new(State { jobs: HashMap::new(), shutdown: false }),
            cv: Condvar::new(),
            epoch: Instant::now(),
            next_job: AtomicU64::new(0),
            nworkers,
            lanes: (0..nworkers).map(|_| Mutex::new(Vec::new())).collect(),
            tracing: AtomicBool::new(false),
            busy_nanos: AtomicU64::new(0),
            on_complete,
            recorder: OnceLock::new(),
        });
        let workers = (0..nworkers)
            .map(|lane| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ca-serve-{lane}"))
                    .spawn(move || worker_loop(&inner, lane))
                    .expect("spawn frontier worker")
            })
            .collect();
        Self { inner, workers: Mutex::new(workers) }
    }

    /// Number of worker threads.
    pub fn nworkers(&self) -> usize {
        self.inner.nworkers
    }

    /// Attaches a flight recorder retaining the last `depth` events per
    /// worker (plus one external lane for submit/finalize events) and
    /// returns it. Only the first attach creates a recorder; later calls
    /// return the existing one regardless of `depth`.
    pub fn set_flight_recorder(&self, depth: usize) -> Arc<FlightRecorder> {
        self.inner
            .recorder
            .get_or_init(|| Arc::new(FlightRecorder::new(self.inner.nworkers, depth)))
            .clone()
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.inner.recorder.get().cloned()
    }

    /// Submits a job. Tasks become eligible immediately; the returned
    /// [`JobWatch`] resolves when the job reaches a terminal state. If the
    /// frontier is already shut down, the job finalizes immediately with
    /// [`CancelReason::Shutdown`].
    pub fn submit(&self, graph: TaskGraph<DynJob>, opts: JobOptions) -> (JobId, JobWatch) {
        assert!(opts.weight > 0.0 && opts.weight.is_finite(), "weight must be positive");
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        telemetry::sched_counters().jobs_submitted.inc();
        if let Some(rec) = self.inner.recorder.get() {
            rec.record(rec.nworkers(), FlightEventKind::JobSubmit, id, None);
        }
        let TaskGraph { metas, payloads, succs, npreds } = graph;
        let n = metas.len();
        let now = self.inner.now();
        let watch = JobWatch::new();

        let mut ready = BinaryHeap::new();
        for (t, &np) in npreds.iter().enumerate() {
            if np == 0 {
                ready.push(Ready { priority: metas[t].priority, task: t });
            }
        }
        let mut job = JobState {
            metas,
            slots: payloads.into_iter().map(Some).collect(),
            succs,
            preds: npreds,
            ready,
            cancelled: vec![false; n],
            remaining: n,
            in_flight: 0,
            pass: 0.0,
            weight: opts.weight,
            tag: opts.tag,
            deadline: opts.deadline.map(|d| now + d.as_secs_f64()),
            submitted: now,
            first_dispatch: None,
            tasks_run: 0,
            tasks_cancelled: 0,
            flops_done: 0.0,
            failure: None,
            cancel_reason: None,
            watch: watch.clone(),
        };

        let roots = job.ready.len();
        let mut done = Vec::new();
        {
            let mut st = self.inner.state.lock().expect("frontier lock");
            if st.shutdown {
                job.cancel_reason = Some(CancelReason::Shutdown);
                job.tasks_cancelled = n;
                job.slots.clear();
                job.remaining = 0;
                done.push((build_report(id, job, now), watch.clone()));
            } else {
                // Stride scheduling: start at the current minimum pass so
                // the new job neither starves nor sweeps the pool.
                let base =
                    st.jobs.values().map(|j| j.pass).fold(f64::INFINITY, f64::min);
                job.pass = if base.is_finite() { base } else { 0.0 };
                if n == 0 {
                    done.push((build_report(id, job, now), watch.clone()));
                } else {
                    st.jobs.insert(id, job);
                }
            }
        }
        if done.is_empty() {
            // Wake one worker per root task (capped at the pool size); the
            // workers' chained wakeups take it from there.
            for _ in 0..roots.min(self.inner.nworkers) {
                self.inner.cv.notify_one();
            }
        } else {
            self.inner.deliver(done);
        }
        (id, watch)
    }

    /// Cancels a job: undispatched tasks are dropped, in-flight tasks run
    /// to completion, the job finalizes with
    /// [`JobOutcome::Cancelled`]`(`[`CancelReason::User`]`)`. Returns
    /// `false` if the job already finished or was already cancelled.
    pub fn cancel(&self, id: JobId) -> bool {
        self.cancel_with(id, CancelReason::User)
    }

    fn cancel_with(&self, id: JobId, reason: CancelReason) -> bool {
        let mut done = Vec::new();
        let hit = {
            let mut st = self.inner.state.lock().expect("frontier lock");
            let now = self.inner.now();
            cancel_job_locked(&mut st, id, reason, now, &mut done)
        };
        self.inner.deliver(done);
        hit
    }

    /// Sheds the oldest job that has not yet dispatched any task,
    /// finalizing it with [`CancelReason::Shed`]. Returns its id, or `None`
    /// if every active job already started running.
    pub fn shed_oldest_queued(&self) -> Option<JobId> {
        let mut done = Vec::new();
        let victim = {
            let mut st = self.inner.state.lock().expect("frontier lock");
            let victim = st
                .jobs
                .iter()
                .filter(|(_, j)| j.first_dispatch.is_none() && j.cancel_reason.is_none())
                .min_by(|(ai, a), (bi, b)| {
                    a.submitted.total_cmp(&b.submitted).then(ai.cmp(bi))
                })
                .map(|(&id, _)| id);
            if let Some(id) = victim {
                let now = self.inner.now();
                cancel_job_locked(&mut st, id, CancelReason::Shed, now, &mut done);
            }
            victim
        };
        self.inner.deliver(done);
        victim
    }

    /// Jobs admitted and not yet finalized.
    pub fn active_jobs(&self) -> usize {
        self.inner.state.lock().expect("frontier lock").jobs.len()
    }

    /// Active jobs that have not dispatched any task yet.
    pub fn queued_jobs(&self) -> usize {
        let st = self.inner.state.lock().expect("frontier lock");
        st.jobs.values().filter(|j| j.first_dispatch.is_none()).count()
    }

    /// Enables or disables span recording for [`MultiFrontier::timeline`].
    pub fn set_tracing(&self, on: bool) {
        self.inner.tracing.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the recorded execution timeline (spans accumulate while
    /// tracing is enabled; times are seconds since the frontier epoch).
    pub fn timeline(&self) -> Timeline {
        let mut tl = Timeline::new(self.inner.nworkers);
        for (w, lane) in self.inner.lanes.iter().enumerate() {
            let mut spans = lane.lock().expect("lane lock").clone();
            spans.sort_by(|a, b| a.start.total_cmp(&b.start));
            tl.lanes[w] = spans;
        }
        tl.makespan = self.inner.now();
        tl
    }

    /// Total seconds workers spent executing task bodies since start.
    pub fn busy_seconds(&self) -> f64 {
        self.inner.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Seconds since the frontier started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.inner.now()
    }

    /// Shuts down: cancels every active job with [`CancelReason::Shutdown`]
    /// (in-flight tasks finish), then joins the workers. Idempotent;
    /// submissions after shutdown finalize immediately as cancelled.
    pub fn shutdown(&self) {
        let mut done = Vec::new();
        {
            let mut st = self.inner.state.lock().expect("frontier lock");
            st.shutdown = true;
            let ids: Vec<JobId> = st.jobs.keys().copied().collect();
            let now = self.inner.now();
            for id in ids {
                cancel_job_locked(&mut st, id, CancelReason::Shutdown, now, &mut done);
            }
        }
        self.inner.cv.notify_all();
        self.inner.deliver(done);
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for MultiFrontier {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the terminal report for a job (consuming its state).
fn build_report(id: JobId, job: JobState, now: f64) -> JobReport {
    let outcome = if let Some(e) = job.failure {
        JobOutcome::Failed(e)
    } else if let Some(r) = job.cancel_reason {
        JobOutcome::Cancelled(r)
    } else {
        JobOutcome::Completed
    };
    JobReport {
        job: id,
        tag: job.tag,
        outcome,
        submitted: job.submitted,
        first_dispatch: job.first_dispatch,
        finished: now,
        tasks_run: job.tasks_run,
        tasks_cancelled: job.tasks_cancelled,
        flops: job.flops_done,
    }
}

/// Marks a job cancelled: drops every undispatched task, finalizes
/// immediately if nothing is in flight. Returns `false` if the job is
/// unknown or already cancelled/failed-and-draining.
fn cancel_job_locked(
    st: &mut State,
    id: JobId,
    reason: CancelReason,
    now: f64,
    done: &mut Vec<(JobReport, JobWatch)>,
) -> bool {
    let Some(job) = st.jobs.get_mut(&id) else { return false };
    if job.cancel_reason.is_some() {
        return false;
    }
    job.cancel_reason = Some(reason);
    job.ready.clear();
    for t in 0..job.slots.len() {
        if let Some(body) = job.slots[t].take() {
            drop(body);
            job.cancelled[t] = true;
            job.tasks_cancelled += 1;
            job.remaining -= 1;
        }
    }
    debug_assert_eq!(job.remaining, job.in_flight);
    if job.remaining == 0 {
        let job = st.jobs.remove(&id).expect("job present");
        let watch = job.watch.clone();
        done.push((build_report(id, job, now), watch));
    }
    true
}

/// Cancels jobs whose deadline passed. Called at dispatch points.
fn expire_deadlines(inner: &Inner, st: &mut State, done: &mut Vec<(JobReport, JobWatch)>) {
    let now = inner.now();
    let expired: Vec<JobId> = st
        .jobs
        .iter()
        .filter(|(_, j)| j.cancel_reason.is_none() && j.deadline.is_some_and(|d| now >= d))
        .map(|(&id, _)| id)
        .collect();
    for id in expired {
        cancel_job_locked(st, id, CancelReason::Deadline, now, done);
    }
}

/// A dispatched task, ready to run outside the lock.
struct Dispatch {
    job: JobId,
    task: TaskId,
    label: TaskLabel,
    flops: f64,
    body: DynJob,
}

/// Picks the highest-priority ready task of the min-pass runnable job.
fn try_dispatch(inner: &Inner, st: &mut State) -> Option<Dispatch> {
    let jid = st
        .jobs
        .iter()
        .filter(|(_, j)| j.runnable())
        .min_by(|(ai, a), (bi, b)| a.pass.total_cmp(&b.pass).then(ai.cmp(bi)))
        .map(|(&id, _)| id)?;
    let job = st.jobs.get_mut(&jid).expect("job present");
    let Ready { task, .. } = job.ready.pop().expect("runnable job has a ready task");
    let body = job.slots[task].take().expect("task dispatched twice");
    let meta = &job.metas[task];
    let flops = meta.flops;
    let label = meta.label;
    job.in_flight += 1;
    job.pass += flops.max(1.0) / job.weight;
    if job.first_dispatch.is_none() {
        job.first_dispatch = Some(inner.now());
    }
    Some(Dispatch { job: jid, task, label, flops, body })
}

/// Records a finished task: releases successors (or cancels the failure
/// closure), finalizes the job when its last task is accounted. Returns
/// how many new tasks became ready.
#[allow(clippy::too_many_arguments)]
fn complete_task(
    st: &mut State,
    jid: JobId,
    task: TaskId,
    label: TaskLabel,
    flops: f64,
    lane: usize,
    failure: Option<(String, bool)>,
    now: f64,
    done: &mut Vec<(JobReport, JobWatch)>,
) -> usize {
    let job = st.jobs.get_mut(&jid).expect("in-flight job present");
    job.in_flight -= 1;
    job.remaining -= 1;
    job.tasks_run += 1;
    job.flops_done += flops;
    let mut released = 0usize;
    match failure {
        Some((message, panicked)) => {
            // Cancel the transitive successors inside this job. Every
            // member of the closure is undispatched (its path to the failed
            // task goes through a predecessor that never completed), unless
            // a whole-job cancel already dropped it.
            let mut newly = Vec::new();
            let mut stack: Vec<TaskId> = job.succs[task].clone();
            while let Some(s) = stack.pop() {
                if !job.cancelled[s] {
                    job.cancelled[s] = true;
                    if job.slots[s].take().is_some() {
                        job.tasks_cancelled += 1;
                        job.remaining -= 1;
                        newly.push(s);
                    }
                    stack.extend(job.succs[s].iter().copied());
                }
            }
            match job.failure.as_mut() {
                None => {
                    newly.sort_unstable();
                    job.failure = Some(ExecError {
                        task,
                        label,
                        lane,
                        message,
                        panicked,
                        cancelled: newly,
                    });
                }
                Some(f) => {
                    f.cancelled.extend(newly);
                    f.cancelled.sort_unstable();
                    f.cancelled.dedup();
                }
            }
        }
        None => {
            if job.cancel_reason.is_none() {
                for s in job.succs[task].clone() {
                    job.preds[s] -= 1;
                    if job.preds[s] == 0 && !job.cancelled[s] {
                        job.ready.push(Ready { priority: job.metas[s].priority, task: s });
                        released += 1;
                    }
                }
            }
        }
    }
    if job.remaining == 0 {
        let job = st.jobs.remove(&jid).expect("job present");
        let watch = job.watch.clone();
        done.push((build_report(jid, job, now), watch));
    }
    released
}

fn worker_loop(inner: &Inner, lane: usize) {
    loop {
        // --- Acquire work (or exit on shutdown).
        let mut more_ready = false;
        let dispatch = {
            let mut st = inner.state.lock().expect("frontier lock");
            loop {
                let mut done = Vec::new();
                expire_deadlines(inner, &mut st, &mut done);
                if !done.is_empty() {
                    drop(st);
                    inner.deliver(done);
                    st = inner.state.lock().expect("frontier lock");
                    continue;
                }
                if let Some(d) = try_dispatch(inner, &mut st) {
                    more_ready = st.jobs.values().any(JobState::runnable);
                    break Some(d);
                }
                if st.shutdown {
                    break None;
                }
                let (guard, _) =
                    inner.cv.wait_timeout(st, IDLE_SWEEP).expect("frontier lock");
                st = guard;
            }
        };
        // Chained wakeup: if ready tasks remain beyond the one this worker
        // took, wake exactly one peer (which wakes the next, and so on)
        // instead of thundering the whole pool on every transition.
        if more_ready {
            inner.cv.notify_one();
        }
        let Some(Dispatch { job: jid, task, label, flops, body }) = dispatch else {
            return;
        };

        // --- Run the task outside the lock.
        let counters = telemetry::sched_counters();
        counters.tasks_dispatched.inc();
        if let Some(rec) = inner.recorder.get() {
            // Publish the recorder as this thread's context so recovery-layer
            // events (retry/restore/inject) land on this worker's lane, then
            // note the dispatch itself.
            telemetry::set_thread_recorder(Arc::downgrade(rec), lane);
            rec.record(lane, FlightEventKind::Dispatch, jid, Some(label));
        }
        let start = inner.now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        let end = inner.now();
        inner
            .busy_nanos
            .fetch_add(((end - start) * 1e9) as u64, Ordering::Relaxed);
        if inner.tracing.load(Ordering::Relaxed) {
            inner.lanes[lane]
                .lock()
                .expect("lane lock")
                .push(Span { task, label, start, end });
        }
        let failure = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(f)) => Some((f.message, false)),
            Err(p) => Some((panic_message(p.as_ref()), true)),
        };
        if failure.is_none() {
            counters.tasks_completed.inc();
        } else {
            counters.tasks_failed.inc();
        }
        if let Some(rec) = inner.recorder.get() {
            let kind =
                if failure.is_none() { FlightEventKind::TaskOk } else { FlightEventKind::TaskFail };
            rec.record(lane, kind, jid, Some(label));
        }

        // --- Account under the lock, deliver reports off it.
        let mut done = Vec::new();
        let released = {
            let mut st = inner.state.lock().expect("frontier lock");
            complete_task(&mut st, jid, task, label, flops, lane, failure, end, &mut done)
        };
        // This worker loops straight back into dispatch, so it needs no
        // wakeup itself; wake one peer per additional released task (the
        // chained wakeup above keeps the pool saturated from there).
        for _ in 0..released.saturating_sub(1).min(inner.nworkers) {
            inner.cv.notify_one();
        }
        inner.deliver(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TaskFailure;
    use crate::task::{TaskKind, TaskMeta};
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    fn meta(priority: i64, flops: f64) -> TaskMeta {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), flops).with_priority(priority)
    }

    fn chain(
        g: &mut TaskGraph<DynJob>,
        n: usize,
        tag: usize,
        order: &Arc<Mutex<Vec<(usize, usize)>>>,
    ) {
        let mut prev = None;
        for i in 0..n {
            let order = Arc::clone(order);
            let id = g.add_task(meta(0, 1.0), dyn_job(move || {
                order.lock().unwrap().push((tag, i));
            }));
            if let Some(p) = prev {
                g.add_dep(p, id);
            }
            prev = Some(id);
        }
    }

    #[test]
    fn jobs_complete_with_reports() {
        let f = MultiFrontier::new(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g1: TaskGraph<DynJob> = TaskGraph::new();
        chain(&mut g1, 5, 1, &order);
        let mut g2: TaskGraph<DynJob> = TaskGraph::new();
        chain(&mut g2, 3, 2, &order);
        let (_, w1) = f.submit(g1, JobOptions::default());
        let (_, w2) = f.submit(g2, JobOptions::default());
        let r1 = w1.wait();
        let r2 = w2.wait();
        assert!(r1.outcome.is_completed());
        assert!(r2.outcome.is_completed());
        assert_eq!(r1.tasks_run, 5);
        assert_eq!(r2.tasks_run, 3);
        assert!(r1.total_seconds() >= 0.0);
        let o = order.lock().unwrap();
        for tag in [1usize, 2] {
            let steps: Vec<usize> =
                o.iter().filter(|(t, _)| *t == tag).map(|&(_, i)| i).collect();
            let sorted: Vec<usize> = (0..steps.len()).collect();
            assert_eq!(steps, sorted, "intra-job order violated for job {tag}");
        }
        f.shutdown();
    }

    #[test]
    fn weighted_fair_sharing_biases_dispatch() {
        // One worker, two jobs of independent equal-flops tasks: the
        // weight-3 job must receive about 3× the dispatches of the
        // weight-1 job over any prefix.
        let f = MultiFrontier::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mk = |tag: usize| {
            let mut g: TaskGraph<DynJob> = TaskGraph::new();
            for i in 0..40 {
                let order = Arc::clone(&order);
                g.add_task(meta(0, 100.0), dyn_job(move || {
                    order.lock().unwrap().push((tag, i));
                }));
            }
            g
        };
        // Stall the worker so both jobs are admitted before dispatch.
        let (tx, rx) = mpsc::channel::<()>();
        let mut gate: TaskGraph<DynJob> = TaskGraph::new();
        gate.add_task(meta(0, 1.0), dyn_job(move || {
            rx.recv().unwrap();
        }));
        let (_, wg) = f.submit(gate, JobOptions::default());
        let (_, w1) = f.submit(mk(1), JobOptions::default().with_weight(1.0));
        let (_, w3) = f.submit(mk(3), JobOptions::default().with_weight(3.0));
        tx.send(()).unwrap();
        wg.wait();
        w1.wait();
        w3.wait();
        let o = order.lock().unwrap();
        let heavy_in_prefix =
            o.iter().take(40).filter(|(t, _)| *t == 3).count();
        assert!(
            (27..=33).contains(&heavy_in_prefix),
            "weight-3 job got {heavy_in_prefix}/40 of the first dispatches"
        );
        drop(o);
        f.shutdown();
    }

    #[test]
    fn intra_job_priority_is_preserved() {
        // Single worker: within one job, ready tasks dispatch in priority
        // order exactly like the one-shot pool.
        let f = MultiFrontier::new(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<()>();
        let mut g: TaskGraph<DynJob> = TaskGraph::new();
        g.add_task(meta(100, 1.0), dyn_job(move || {
            rx.recv().unwrap();
        }));
        for (i, p) in [(0usize, 1i64), (1, 5), (2, 3)] {
            let order = Arc::clone(&order);
            g.add_task(meta(p, 1.0), dyn_job(move || {
                order.lock().unwrap().push(i);
            }));
        }
        let (_, w) = f.submit(g, JobOptions::default());
        tx.send(()).unwrap();
        w.wait();
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 0]);
        f.shutdown();
    }

    #[test]
    fn failure_is_isolated_to_its_job() {
        let f = MultiFrontier::new(2);
        let ok_runs = Arc::new(AtomicUsize::new(0));

        let mut bad: TaskGraph<DynJob> = TaskGraph::new();
        let a = bad.add_task(
            meta(0, 1.0),
            Box::new(|| Err(TaskFailure::new("numerical breakdown"))),
        );
        let b = bad.add_task(meta(0, 1.0), dyn_job(|| {}));
        let c = bad.add_task(meta(0, 1.0), dyn_job(|| {}));
        bad.add_dep(a, b);
        bad.add_dep(b, c);

        let mut good: TaskGraph<DynJob> = TaskGraph::new();
        for _ in 0..20 {
            let ok = Arc::clone(&ok_runs);
            good.add_task(meta(0, 1.0), dyn_job(move || {
                ok.fetch_add(1, Ordering::SeqCst);
            }));
        }

        let (_, wb) = f.submit(bad, JobOptions::default());
        let (_, wg) = f.submit(good, JobOptions::default());
        let rb = wb.wait();
        let rg = wg.wait();
        match rb.outcome {
            JobOutcome::Failed(e) => {
                assert_eq!(e.task, a);
                assert!(e.message.contains("numerical breakdown"));
                assert_eq!(e.cancelled, vec![b, c]);
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(rb.tasks_run, 1);
        assert_eq!(rb.tasks_cancelled, 2);
        assert!(rg.outcome.is_completed());
        assert_eq!(ok_runs.load(Ordering::SeqCst), 20);
        f.shutdown();
    }

    #[test]
    fn cancelling_one_job_leaves_others_untouched() {
        // Single worker blocked on a gate: cancel job B before it can
        // start; job A must still complete fully.
        let f = MultiFrontier::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        let b_ran = Arc::new(AtomicUsize::new(0));

        let mut ga: TaskGraph<DynJob> = TaskGraph::new();
        let gate = ga.add_task(meta(0, 1.0), dyn_job(move || {
            rx.recv().unwrap();
        }));
        let after = ga.add_task(meta(0, 1.0), dyn_job(|| {}));
        ga.add_dep(gate, after);

        let mut gb: TaskGraph<DynJob> = TaskGraph::new();
        for _ in 0..4 {
            let b = Arc::clone(&b_ran);
            gb.add_task(meta(0, 1.0), dyn_job(move || {
                b.fetch_add(1, Ordering::SeqCst);
            }));
        }

        let (_, wa) = f.submit(ga, JobOptions::default());
        let (idb, wb) = f.submit(gb, JobOptions::default());
        assert!(f.cancel(idb));
        assert!(!f.cancel(idb), "double cancel must be a no-op");
        tx.send(()).unwrap();
        let ra = wa.wait();
        let rb = wb.wait();
        assert!(ra.outcome.is_completed());
        assert_eq!(ra.tasks_run, 2);
        assert!(matches!(rb.outcome, JobOutcome::Cancelled(CancelReason::User)));
        assert_eq!(rb.tasks_run, 0);
        assert_eq!(rb.tasks_cancelled, 4);
        assert_eq!(b_ran.load(Ordering::SeqCst), 0, "cancelled job body ran");
        f.shutdown();
    }

    #[test]
    fn expired_deadline_cancels_before_dispatch() {
        let f = MultiFrontier::new(1);
        let ran = Arc::new(AtomicUsize::new(0));
        let mut g: TaskGraph<DynJob> = TaskGraph::new();
        let r = Arc::clone(&ran);
        g.add_task(meta(0, 1.0), dyn_job(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        let (_, w) =
            f.submit(g, JobOptions::default().with_deadline(Duration::ZERO));
        let report = w.wait();
        assert!(matches!(
            report.outcome,
            JobOutcome::Cancelled(CancelReason::Deadline)
        ));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        f.shutdown();
    }

    #[test]
    fn shed_oldest_picks_first_queued_job() {
        let f = MultiFrontier::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        let mut gate: TaskGraph<DynJob> = TaskGraph::new();
        gate.add_task(meta(0, 1.0), dyn_job(move || {
            rx.recv().unwrap();
        }));
        let (_, wg) = f.submit(gate, JobOptions::default());
        // Give the worker time to pick up the gate so it is "running".
        while f.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        let mk = || {
            let mut g: TaskGraph<DynJob> = TaskGraph::new();
            g.add_task(meta(0, 1.0), dyn_job(|| {}));
            g
        };
        let (id1, w1) = f.submit(mk(), JobOptions::default());
        let (_id2, w2) = f.submit(mk(), JobOptions::default());
        assert_eq!(f.shed_oldest_queued(), Some(id1));
        let r1 = w1.wait();
        assert!(matches!(r1.outcome, JobOutcome::Cancelled(CancelReason::Shed)));
        tx.send(()).unwrap();
        assert!(wg.wait().outcome.is_completed());
        assert!(w2.wait().outcome.is_completed());
        f.shutdown();
    }

    #[test]
    fn shutdown_cancels_pending_and_is_idempotent() {
        let f = MultiFrontier::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        let mut gate: TaskGraph<DynJob> = TaskGraph::new();
        gate.add_task(meta(0, 1.0), dyn_job(move || {
            rx.recv().unwrap();
        }));
        let (_, wg) = f.submit(gate, JobOptions::default());
        while f.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        let mut g: TaskGraph<DynJob> = TaskGraph::new();
        g.add_task(meta(0, 1.0), dyn_job(|| {}));
        let (_, wq) = f.submit(g, JobOptions::default());
        tx.send(()).unwrap();
        f.shutdown();
        f.shutdown();
        // The gate job ran its only task; the queued job may have been
        // cancelled or may have slipped in before shutdown — either way
        // both watches must resolve.
        assert!(wg.try_get().is_some());
        assert!(wq.try_get().is_some());
        // Submissions after shutdown resolve immediately as cancelled.
        let mut g2: TaskGraph<DynJob> = TaskGraph::new();
        g2.add_task(meta(0, 1.0), dyn_job(|| {}));
        let (_, w2) = f.submit(g2, JobOptions::default());
        assert!(matches!(
            w2.wait().outcome,
            JobOutcome::Cancelled(CancelReason::Shutdown)
        ));
    }

    #[test]
    fn watch_timeout_reports_running_job() {
        let f = MultiFrontier::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        let mut g: TaskGraph<DynJob> = TaskGraph::new();
        g.add_task(meta(0, 1.0), dyn_job(move || {
            rx.recv().unwrap();
        }));
        let (_, w) = f.submit(g, JobOptions::default());
        assert!(w.wait_timeout(Duration::from_millis(10)).is_none());
        assert!(!w.is_done());
        tx.send(()).unwrap();
        assert!(w.wait_timeout(Duration::from_secs(10)).is_some());
        f.shutdown();
    }
}
