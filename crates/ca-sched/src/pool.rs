//! Threaded execution of a task graph.
//!
//! A fixed pool of workers drains a shared priority queue of ready tasks;
//! completing a task decrements its successors' predecessor counts and
//! enqueues those that become ready. Priorities implement the paper's
//! lookahead-of-1 policy (the DAG builders assign them); among equal
//! priorities, lower task id wins, which follows submission order.
//!
//! Failure semantics: jobs return [`TaskResult`], and panics are caught and
//! converted to failures. A failed task never releases its successors;
//! instead the pool marks the failed task's **transitive successors** as
//! cancelled (they are accounted for without running), keeps draining every
//! task that does not depend on the failure, and reports the first failure
//! as an [`ExecError`] via [`try_run_graph`]. The infallible [`run_graph`]
//! wrapper re-raises the original panic (or panics with the failure
//! message) after the pool has drained.

use crate::fault::{ExecError, FaultAction, FaultPlan, TaskFailure, TaskResult};
use crate::graph::TaskGraph;
use crate::profile::{Collector, Profile};
use crate::task::{TaskId, TaskLabel};
use crate::trace::{Span, Timeline};
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrd};
use std::time::Instant;

/// A unit of executable work. Borrows from the caller's scope (`'s`), so
/// tasks can capture references to a shared matrix. Returns `Ok(())` on
/// success; an `Err` (or a panic) cancels all transitive successors.
pub type Job<'s> = Box<dyn FnOnce() -> TaskResult + Send + 's>;

/// Wraps an infallible closure as a [`Job`]. This is the common case: most
/// kernels signal trouble by panicking (caught by the pool), not by
/// returning `Err`.
pub fn job<'s>(f: impl FnOnce() + Send + 's) -> Job<'s> {
    Box::new(move || {
        f();
        Ok(())
    })
}

#[derive(PartialEq, Eq)]
struct ReadyEntry {
    priority: i64,
    id: TaskId,
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then lower id first.
        self.priority.cmp(&other.priority).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Shared {
    ready: Mutex<BinaryHeap<ReadyEntry>>,
    cv: Condvar,
    /// Tasks not yet accounted for (executed or cancelled).
    remaining: AtomicUsize,
}

/// First failure wins; later failures only contribute their cancelled sets.
pub(crate) struct FailureRecord {
    pub(crate) task: TaskId,
    pub(crate) label: TaskLabel,
    pub(crate) lane: usize,
    pub(crate) message: String,
    pub(crate) panicked: bool,
    pub(crate) payload: Option<Box<dyn std::any::Any + Send>>,
    pub(crate) cancelled: Vec<TaskId>,
}

impl FailureRecord {
    /// Converts the record into the public error (payload dropped,
    /// cancelled set sorted and deduplicated).
    pub(crate) fn into_exec_error(self) -> ExecError {
        let mut cancelled = self.cancelled;
        cancelled.sort_unstable();
        cancelled.dedup();
        ExecError {
            task: self.task,
            label: self.label,
            lane: self.lane,
            message: self.message,
            panicked: self.panicked,
            cancelled,
        }
    }
}

/// Statistics returned by [`run_graph`].
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock execution time in seconds.
    pub wall_seconds: f64,
    /// Wall-clock timeline (always recorded; spans use `Instant` deltas).
    pub timeline: Timeline,
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_string()
    }
}

/// Executes the graph on `nthreads` workers, consuming it.
///
/// Returns after every task has run. If a task fails or panics, its
/// transitive successors are cancelled, every independent task still runs,
/// and the first panic is re-raised (a non-panic `TaskFailure` becomes a
/// panic naming the task).
///
/// # Panics
/// Propagates the first task panic; panics if `nthreads == 0`.
pub fn run_graph(graph: TaskGraph<Job<'_>>, nthreads: usize) -> ExecStats {
    run_graph_on(graph, nthreads, crate::persist::default_persistent())
}

/// [`run_graph`] on the process-wide persistent worker pool: lane 0 runs on
/// the calling thread, the remaining lanes borrow hub threads instead of
/// spawning fresh ones. Identical semantics, no per-call thread churn.
pub fn run_graph_persistent(graph: TaskGraph<Job<'_>>, nthreads: usize) -> ExecStats {
    run_graph_on(graph, nthreads, true)
}

/// [`run_graph`] on a freshly spawned, scoped worker pool regardless of the
/// `persistent-pool` feature — the churn-y pre-feature behavior, kept
/// callable so the pool-churn microbench can compare the two paths in one
/// binary.
pub fn run_graph_scoped(graph: TaskGraph<Job<'_>>, nthreads: usize) -> ExecStats {
    run_graph_on(graph, nthreads, false)
}

fn run_graph_on(graph: TaskGraph<Job<'_>>, nthreads: usize, persistent: bool) -> ExecStats {
    let (stats, failure, _) = exec_graph(graph, nthreads, None, false, persistent);
    if let Some(rec) = failure {
        match rec.payload {
            Some(p) => std::panic::resume_unwind(p),
            None => panic!("task {} ({}) failed: {}", rec.task, rec.label, rec.message),
        }
    }
    stats
}

/// Fallible sibling of [`run_graph`]: instead of panicking on a task
/// failure, drains the pool (cancelling the failed task's transitive
/// successors) and returns an [`ExecError`] identifying the failed task,
/// its label, its worker lane, and the cancelled set.
pub fn try_run_graph(graph: TaskGraph<Job<'_>>, nthreads: usize) -> Result<ExecStats, ExecError> {
    try_run_graph_with_faults(graph, nthreads, &FaultPlan::new())
}

/// [`try_run_graph`] on the process-wide persistent worker pool (see
/// [`run_graph_persistent`]).
pub fn try_run_graph_persistent(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
) -> Result<ExecStats, ExecError> {
    let (stats, failure, _) = exec_graph(graph, nthreads, Some(&FaultPlan::new()), false, true);
    match failure {
        None => Ok(stats),
        Some(rec) => Err(rec.into_exec_error()),
    }
}

/// [`try_run_graph`] with deterministic fault injection: as each task
/// starts, `plan` may force it to fail, panic, or run delayed. Used by the
/// stress tests to exercise failure paths reproducibly.
pub fn try_run_graph_with_faults(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
    plan: &FaultPlan,
) -> Result<ExecStats, ExecError> {
    let (stats, failure, _) =
        exec_graph(graph, nthreads, Some(plan), false, crate::persist::default_persistent());
    match failure {
        None => Ok(stats),
        Some(rec) => Err(rec.into_exec_error()),
    }
}

/// Profiling sibling of [`try_run_graph_with_faults`]: records the full task
/// lifecycle (ready → dispatch → start → end, queue-depth samples) and
/// returns a [`Profile`] **always** — even when a task fails — with any
/// failure reported on the side. Cancelled tasks appear in
/// [`Profile::cancelled`], never as records. Pass `&FaultPlan::new()` for a
/// fault-free profiled run.
pub fn profile_run_graph(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
    plan: &FaultPlan,
) -> (Profile, Option<ExecError>) {
    let (_, failure, profile) =
        exec_graph(graph, nthreads, Some(plan), true, crate::persist::default_persistent());
    (profile.expect("profiling enabled"), failure.map(FailureRecord::into_exec_error))
}

/// Shared executor. Runs the graph to quiescence: every task either
/// executes or is cancelled because a (transitive) predecessor failed.
fn exec_graph<'s>(
    graph: TaskGraph<Job<'s>>,
    nthreads: usize,
    plan: Option<&FaultPlan>,
    profile: bool,
    persistent: bool,
) -> (ExecStats, Option<FailureRecord>, Option<Profile>) {
    assert!(nthreads > 0, "need at least one worker");
    let n = graph.len();
    let TaskGraph { metas, payloads, succs, npreds } = graph;
    let collector = profile.then(|| Collector::new(n, nthreads));

    // Payload slots claimed exactly once each.
    let slots: Vec<Mutex<Option<Job<'s>>>> =
        payloads.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let preds: Vec<AtomicUsize> = npreds.iter().map(|&c| AtomicUsize::new(c)).collect();
    // Set exactly once per task (by the BFS below); a cancelled task is
    // accounted in `remaining` by whoever wins the swap.
    let cancel_flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    let shared = Shared {
        ready: Mutex::new(BinaryHeap::new()),
        cv: Condvar::new(),
        remaining: AtomicUsize::new(n),
    };
    {
        let mut q = shared.ready.lock();
        for id in 0..n {
            if npreds[id] == 0 {
                if let Some(c) = &collector {
                    c.mark_ready(id, 0.0);
                }
                q.push(ReadyEntry { priority: metas[id].priority, id });
            }
        }
        if let Some(c) = &collector {
            c.sample_queue(0.0, q.len());
        }
    }

    let t0 = Instant::now();
    let lanes: Vec<Mutex<Vec<Span>>> = (0..nthreads).map(|_| Mutex::new(Vec::new())).collect();
    let fail_state: Mutex<Option<FailureRecord>> = Mutex::new(None);

    {
        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(nthreads);
        for w in 0..nthreads {
            let shared = &shared;
            let slots = &slots;
            let preds = &preds;
            let cancel_flags = &cancel_flags;
            let metas = &metas;
            let succs = &succs;
            let lanes = &lanes;
            let fail_state = &fail_state;
            let collector = collector.as_ref();
            bodies.push(Box::new(move || {
                loop {
                    let id = {
                        let mut q = shared.ready.lock();
                        loop {
                            if let Some(e) = q.pop() {
                                if let Some(c) = collector {
                                    c.sample_queue(t0.elapsed().as_secs_f64(), q.len());
                                }
                                break e.id;
                            }
                            if shared.remaining.load(AtomicOrd::Acquire) == 0 {
                                return;
                            }
                            shared.cv.wait(&mut q);
                        }
                    };
                    let dispatch = t0.elapsed().as_secs_f64();
                    crate::telemetry::sched_counters().tasks_dispatched.inc();

                    let job = slots[id].lock().take().expect("task executed twice");
                    let label = metas[id].label;
                    let fault = plan.and_then(|p| p.decide(&label));
                    let start = t0.elapsed().as_secs_f64();
                    let outcome = match fault {
                        Some(FaultAction::Fail) => {
                            drop(job);
                            Ok(Err(TaskFailure::new("injected fault")))
                        }
                        Some(FaultAction::Panic) => {
                            drop(job);
                            std::panic::catch_unwind(|| -> TaskResult {
                                panic!("injected panic")
                            })
                        }
                        Some(FaultAction::Delay(d)) => {
                            std::thread::sleep(d);
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                        }
                        None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)),
                    };
                    let end = t0.elapsed().as_secs_f64();
                    lanes[w].lock().push(Span { task: id, label, start, end });
                    if let Some(c) = collector {
                        c.record(w, id, &metas[id], dispatch, start, end);
                    }

                    let failure = match outcome {
                        Ok(Ok(())) => None,
                        Ok(Err(f)) => Some((f.message, false, None)),
                        Err(p) => Some((panic_message(p.as_ref()), true, Some(p))),
                    };
                    let counters = crate::telemetry::sched_counters();
                    if failure.is_none() {
                        counters.tasks_completed.inc();
                    } else {
                        counters.tasks_failed.inc();
                    }

                    if let Some((message, panicked, payload)) = failure {
                        // Cancel the transitive successors instead of
                        // releasing them. Nothing in the closure can have
                        // started: each node's path back to the failed task
                        // goes through a predecessor that never completed,
                        // so its predecessor count never reached zero. The
                        // swap makes each task count once even when two
                        // failures race over a shared successor.
                        let mut newly = Vec::new();
                        let mut stack: Vec<TaskId> = succs[id].clone();
                        while let Some(s) = stack.pop() {
                            if !cancel_flags[s].swap(true, AtomicOrd::AcqRel) {
                                newly.push(s);
                                stack.extend(succs[s].iter().copied());
                            }
                        }
                        {
                            let mut rec = fail_state.lock();
                            match rec.as_mut() {
                                None => {
                                    *rec = Some(FailureRecord {
                                        task: id,
                                        label,
                                        lane: w,
                                        message,
                                        panicked,
                                        payload,
                                        cancelled: newly.clone(),
                                    });
                                }
                                Some(r) => r.cancelled.extend(newly.iter().copied()),
                            }
                        }
                        let drained = 1 + newly.len();
                        let finished =
                            shared.remaining.fetch_sub(drained, AtomicOrd::AcqRel) == drained;
                        if finished {
                            drop(shared.ready.lock());
                            shared.cv.notify_all();
                            return;
                        }
                        continue;
                    }

                    // Release successors. The cancelled check is defensive:
                    // a task whose predecessors all completed cannot be in
                    // a cancelled closure, but the load is cheap.
                    let mut newly_ready = Vec::new();
                    for &s in &succs[id] {
                        if preds[s].fetch_sub(1, AtomicOrd::AcqRel) == 1
                            && !cancel_flags[s].load(AtomicOrd::Acquire)
                        {
                            newly_ready.push(s);
                        }
                    }
                    let finished =
                        shared.remaining.fetch_sub(1, AtomicOrd::AcqRel) == 1;
                    if !newly_ready.is_empty() || finished {
                        let mut q = shared.ready.lock();
                        let t_ready = t0.elapsed().as_secs_f64();
                        for s in newly_ready {
                            if let Some(c) = collector {
                                c.mark_ready(s, t_ready);
                            }
                            q.push(ReadyEntry { priority: metas[s].priority, id: s });
                        }
                        if let Some(c) = collector {
                            c.sample_queue(t_ready, q.len());
                        }
                        drop(q);
                        shared.cv.notify_all();
                    }
                    if finished {
                        return;
                    }
                }
            }));
        }
        crate::persist::run_bodies(persistent, bodies);
    }

    let mut timeline = Timeline::new(nthreads);
    let mut executed = 0;
    for (w, lane) in lanes.into_iter().enumerate() {
        let mut spans = lane.into_inner();
        spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        executed += spans.len();
        timeline.lanes[w] = spans;
    }
    timeline.makespan = t0.elapsed().as_secs_f64();

    let profile = collector.map(|c| {
        let cancelled: Vec<TaskId> = (0..n)
            .filter(|&id| cancel_flags[id].load(AtomicOrd::Acquire))
            .collect();
        c.finish("priority-queue", timeline.makespan, &succs, cancelled, false)
    });
    let stats = ExecStats { tasks: executed, wall_seconds: timeline.makespan, timeline };
    (stats, fail_state.into_inner(), profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskMeta};
    use std::sync::atomic::AtomicU64;

    fn meta(priority: i64) -> TaskMeta {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0).with_priority(priority)
    }

    #[test]
    fn executes_all_tasks_once() {
        let counter = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..50 {
            g.add_task(meta(0), job(|| {
                counter.fetch_add(1, AtomicOrd::Relaxed);
            }));
        }
        let stats = run_graph(g, 4);
        assert_eq!(counter.load(AtomicOrd::Relaxed), 50);
        assert_eq!(stats.tasks, 50);
    }

    #[test]
    fn respects_dependencies() {
        // Chain a -> b -> c writing increasing stamps.
        let stamp = AtomicU64::new(0);
        let order = Mutex::new(Vec::new());
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let mk = |name: &'static str| {
            let stamp = &stamp;
            let order = &order;
            move || {
                let s = stamp.fetch_add(1, AtomicOrd::SeqCst);
                order.lock().push((name, s));
            }
        };
        let a = g.add_task(meta(0), job(mk("a")));
        let b = g.add_task(meta(0), job(mk("b")));
        let c = g.add_task(meta(0), job(mk("c")));
        g.add_dep(a, b);
        g.add_dep(b, c);
        run_graph(g, 4);
        let o = order.into_inner();
        let pos = |n: &str| o.iter().position(|(x, _)| *x == n).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn fan_out_fan_in_runs_everything() {
        let total = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let root = g.add_task(meta(0), job(|| {
            total.fetch_add(1, AtomicOrd::Relaxed);
        }));
        let mids: Vec<_> = (0..16)
            .map(|_| {
                let id = g.add_task(meta(0), job(|| {
                    total.fetch_add(1, AtomicOrd::Relaxed);
                }));
                g.add_dep(root, id);
                id
            })
            .collect();
        let sink = g.add_task(meta(0), job(|| {
            total.fetch_add(1, AtomicOrd::Relaxed);
        }));
        for m in mids {
            g.add_dep(m, sink);
        }
        run_graph(g, 3);
        assert_eq!(total.load(AtomicOrd::Relaxed), 18);
    }

    #[test]
    fn single_thread_respects_priority_order() {
        let order = Mutex::new(Vec::new());
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        // All ready at start; one worker must take highest priority first.
        for (i, p) in [(0usize, 1i64), (1, 5), (2, 3)] {
            let order = &order;
            g.add_task(meta(p), job(move || order.lock().push(i)));
        }
        run_graph(g, 1);
        assert_eq!(order.into_inner(), vec![1, 2, 0]);
    }

    #[test]
    fn timeline_has_all_spans() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..10 {
            g.add_task(meta(0), job(|| std::hint::black_box(())));
        }
        let stats = run_graph(g, 2);
        let total: usize = stats.timeline.lanes.iter().map(|l| l.len()).sum();
        assert_eq!(total, 10);
        stats.timeline.validate();
    }

    #[test]
    fn task_panic_propagates() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        g.add_task(meta(0), job(|| panic!("boom in task")));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_graph(g, 2)));
        assert!(r.is_err());
    }

    #[test]
    fn scoped_borrow_of_external_data() {
        // Tasks mutate disjoint slots of a borrowed buffer.
        let mut data = vec![0u64; 8];
        {
            let slots: Vec<_> = data.iter_mut().collect();
            let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
            for (i, slot) in slots.into_iter().enumerate() {
                g.add_task(meta(0), job(move || *slot = i as u64 + 1));
            }
            run_graph(g, 4);
        }
        assert_eq!(data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn failed_task_cancels_transitive_successors() {
        // a -> b -> c: a fails, so b and c must never run.
        let ran = [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)];
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let a = g.add_task(meta(0), Box::new(|| {
            ran[0].fetch_add(1, AtomicOrd::SeqCst);
            Err(TaskFailure::new("pivot went sideways"))
        }));
        let ran_ref = &ran;
        let b = g.add_task(meta(0), job(move || {
            ran_ref[1].fetch_add(1, AtomicOrd::SeqCst);
        }));
        let c = g.add_task(meta(0), job(move || {
            ran_ref[2].fetch_add(1, AtomicOrd::SeqCst);
        }));
        g.add_dep(a, b);
        g.add_dep(b, c);
        let err = try_run_graph(g, 4).unwrap_err();
        assert_eq!(err.task, a);
        assert!(!err.panicked);
        assert!(err.message.contains("pivot went sideways"));
        assert_eq!(err.cancelled, vec![b, c]);
        assert_eq!(ran[0].load(AtomicOrd::SeqCst), 1);
        assert_eq!(ran[1].load(AtomicOrd::SeqCst), 0);
        assert_eq!(ran[2].load(AtomicOrd::SeqCst), 0);
    }

    #[test]
    fn independent_branch_survives_failure() {
        // Diamond with an extra independent chain: failing one branch must
        // not stop the other branch or the chain, only the join.
        let ok_runs = AtomicUsize::new(0);
        let join_runs = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let root = g.add_task(meta(0), job(|| {}));
        let bad = g.add_task(meta(0), Box::new(|| Err(TaskFailure::new("boom"))));
        let good = g.add_task(meta(0), job(|| {
            ok_runs.fetch_add(1, AtomicOrd::SeqCst);
        }));
        let join = g.add_task(meta(0), job(|| {
            join_runs.fetch_add(1, AtomicOrd::SeqCst);
        }));
        g.add_dep(root, bad);
        g.add_dep(root, good);
        g.add_dep(bad, join);
        g.add_dep(good, join);
        let chain: Vec<_> = (0..8)
            .map(|_| {
                g.add_task(meta(0), job(|| {
                    ok_runs.fetch_add(1, AtomicOrd::SeqCst);
                }))
            })
            .collect();
        for pair in chain.windows(2) {
            g.add_dep(pair[0], pair[1]);
        }
        let err = try_run_graph(g, 4).unwrap_err();
        assert_eq!(err.task, bad);
        assert_eq!(err.cancelled, vec![join]);
        assert_eq!(ok_runs.load(AtomicOrd::SeqCst), 9);
        assert_eq!(join_runs.load(AtomicOrd::SeqCst), 0);
    }

    #[test]
    fn try_run_graph_succeeds_on_clean_graph() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..20 {
            g.add_task(meta(0), job(|| {}));
        }
        let stats = try_run_graph(g, 4).expect("clean graph must succeed");
        assert_eq!(stats.tasks, 20);
    }

    #[test]
    fn fault_plan_injects_panic_deterministically() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let ids: Vec<_> = (0..6)
            .map(|i| {
                let m = TaskMeta::new(TaskLabel::new(TaskKind::Update, i, 0, 0), 1.0);
                g.add_task(m, job(|| {}))
            })
            .collect();
        for pair in ids.windows(2) {
            g.add_dep(pair[0], pair[1]);
        }
        // Panic on the task with step == 2; everything after it cancels.
        let plan = FaultPlan::new().panic_nth(1, |l| l.step == 2);
        let err = try_run_graph_with_faults(g, 2, &plan).unwrap_err();
        assert_eq!(err.task, ids[2]);
        assert!(err.panicked);
        assert!(err.message.contains("injected panic"));
        assert_eq!(err.cancelled, vec![ids[3], ids[4], ids[5]]);
    }

    #[test]
    fn injected_failure_on_source_cancels_whole_chain() {
        let ran = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let ids: Vec<_> = (0..5)
            .map(|i| {
                let m = TaskMeta::new(TaskLabel::new(TaskKind::Panel, i, 0, 0), 1.0);
                let ran = &ran;
                g.add_task(m, job(move || {
                    ran.fetch_add(1, AtomicOrd::SeqCst);
                }))
            })
            .collect();
        for pair in ids.windows(2) {
            g.add_dep(pair[0], pair[1]);
        }
        let plan = FaultPlan::new().fail_nth(1, |l| l.step == 0);
        let err = try_run_graph_with_faults(g, 1, &plan).unwrap_err();
        assert_eq!(err.task, ids[0]);
        assert_eq!(err.cancelled.len(), 4);
        assert_eq!(ran.load(AtomicOrd::SeqCst), 0, "no task body may run");
    }
}
