//! Threaded execution of a task graph.
//!
//! A fixed pool of workers drains a shared priority queue of ready tasks;
//! completing a task decrements its successors' predecessor counts and
//! enqueues those that become ready. Priorities implement the paper's
//! lookahead-of-1 policy (the DAG builders assign them); among equal
//! priorities, lower task id wins, which follows submission order.

use crate::graph::TaskGraph;
use crate::task::TaskId;
use crate::trace::{Span, Timeline};
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrd};
use std::time::Instant;

/// A unit of executable work. Borrows from the caller's scope (`'s`), so
/// tasks can capture references to a shared matrix.
pub type Job<'s> = Box<dyn FnOnce() + Send + 's>;

#[derive(PartialEq, Eq)]
struct ReadyEntry {
    priority: i64,
    id: TaskId,
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then lower id first.
        self.priority.cmp(&other.priority).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Shared {
    ready: Mutex<BinaryHeap<ReadyEntry>>,
    cv: Condvar,
    remaining: AtomicUsize,
    panicked: AtomicUsize,
}

/// Statistics returned by [`run_graph`].
#[derive(Clone, Debug)]
pub struct ExecStats {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Wall-clock execution time in seconds.
    pub wall_seconds: f64,
    /// Wall-clock timeline (always recorded; spans use `Instant` deltas).
    pub timeline: Timeline,
}

/// Executes the graph on `nthreads` workers, consuming it.
///
/// Returns after every task has run. If a task panics, the panic is
/// propagated to the caller after the pool drains (remaining tasks whose
/// dependencies were satisfied may still run).
///
/// # Panics
/// Propagates the first task panic; panics if `nthreads == 0`.
pub fn run_graph(graph: TaskGraph<Job<'_>>, nthreads: usize) -> ExecStats {
    assert!(nthreads > 0, "need at least one worker");
    let n = graph.len();
    let TaskGraph { metas, payloads, succs, npreds } = graph;

    // Payload slots claimed exactly once each.
    let slots: Vec<Mutex<Option<Job<'_>>>> =
        payloads.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let preds: Vec<AtomicUsize> = npreds.iter().map(|&c| AtomicUsize::new(c)).collect();

    let shared = Shared {
        ready: Mutex::new(BinaryHeap::new()),
        cv: Condvar::new(),
        remaining: AtomicUsize::new(n),
        panicked: AtomicUsize::new(0),
    };
    {
        let mut q = shared.ready.lock();
        for id in 0..n {
            if npreds[id] == 0 {
                q.push(ReadyEntry { priority: metas[id].priority, id });
            }
        }
    }

    let t0 = Instant::now();
    let lanes: Vec<Mutex<Vec<Span>>> = (0..nthreads).map(|_| Mutex::new(Vec::new())).collect();
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..nthreads {
            let shared = &shared;
            let slots = &slots;
            let preds = &preds;
            let metas = &metas;
            let succs = &succs;
            let lanes = &lanes;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                loop {
                    let id = {
                        let mut q = shared.ready.lock();
                        loop {
                            if let Some(e) = q.pop() {
                                break e.id;
                            }
                            if shared.remaining.load(AtomicOrd::Acquire) == 0 {
                                return;
                            }
                            shared.cv.wait(&mut q);
                        }
                    };

                    let job = slots[id].lock().take().expect("task executed twice");
                    let start = t0.elapsed().as_secs_f64();
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    let end = t0.elapsed().as_secs_f64();
                    lanes[w].lock().push(Span { task: id, label: metas[id].label, start, end });

                    if let Err(p) = result {
                        shared.panicked.fetch_add(1, AtomicOrd::AcqRel);
                        let mut slot = panic_payload.lock();
                        if slot.is_none() {
                            *slot = Some(p);
                        }
                    }

                    // Release successors.
                    let mut newly_ready = Vec::new();
                    for &s in &succs[id] {
                        if preds[s].fetch_sub(1, AtomicOrd::AcqRel) == 1 {
                            newly_ready.push(s);
                        }
                    }
                    let finished =
                        shared.remaining.fetch_sub(1, AtomicOrd::AcqRel) == 1;
                    if !newly_ready.is_empty() || finished {
                        let mut q = shared.ready.lock();
                        for s in newly_ready {
                            q.push(ReadyEntry { priority: metas[s].priority, id: s });
                        }
                        drop(q);
                        shared.cv.notify_all();
                    }
                    if finished {
                        return;
                    }
                }
            });
        }
    });

    if let Some(p) = panic_payload.into_inner() {
        std::panic::resume_unwind(p);
    }

    let mut timeline = Timeline::new(nthreads);
    for (w, lane) in lanes.into_iter().enumerate() {
        let mut spans = lane.into_inner();
        spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        timeline.lanes[w] = spans;
    }
    timeline.makespan = t0.elapsed().as_secs_f64();

    ExecStats { tasks: n, wall_seconds: timeline.makespan, timeline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel, TaskMeta};
    use std::sync::atomic::AtomicU64;

    fn meta(priority: i64) -> TaskMeta {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0).with_priority(priority)
    }

    #[test]
    fn executes_all_tasks_once() {
        let counter = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..50 {
            g.add_task(meta(0), Box::new(|| {
                counter.fetch_add(1, AtomicOrd::Relaxed);
            }));
        }
        let stats = run_graph(g, 4);
        assert_eq!(counter.load(AtomicOrd::Relaxed), 50);
        assert_eq!(stats.tasks, 50);
    }

    #[test]
    fn respects_dependencies() {
        // Chain a -> b -> c writing increasing stamps.
        let stamp = AtomicU64::new(0);
        let order = Mutex::new(Vec::new());
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let mk = |name: &'static str| {
            let stamp = &stamp;
            let order = &order;
            move || {
                let s = stamp.fetch_add(1, AtomicOrd::SeqCst);
                order.lock().push((name, s));
            }
        };
        let a = g.add_task(meta(0), Box::new(mk("a")));
        let b = g.add_task(meta(0), Box::new(mk("b")));
        let c = g.add_task(meta(0), Box::new(mk("c")));
        g.add_dep(a, b);
        g.add_dep(b, c);
        run_graph(g, 4);
        let o = order.into_inner();
        let pos = |n: &str| o.iter().position(|(x, _)| *x == n).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn fan_out_fan_in_runs_everything() {
        let total = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let root = g.add_task(meta(0), Box::new(|| {
            total.fetch_add(1, AtomicOrd::Relaxed);
        }));
        let mids: Vec<_> = (0..16)
            .map(|_| {
                let id = g.add_task(meta(0), Box::new(|| {
                    total.fetch_add(1, AtomicOrd::Relaxed);
                }));
                g.add_dep(root, id);
                id
            })
            .collect();
        let sink = g.add_task(meta(0), Box::new(|| {
            total.fetch_add(1, AtomicOrd::Relaxed);
        }));
        for m in mids {
            g.add_dep(m, sink);
        }
        run_graph(g, 3);
        assert_eq!(total.load(AtomicOrd::Relaxed), 18);
    }

    #[test]
    fn single_thread_respects_priority_order() {
        let order = Mutex::new(Vec::new());
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        // All ready at start; one worker must take highest priority first.
        for (i, p) in [(0usize, 1i64), (1, 5), (2, 3)] {
            let order = &order;
            g.add_task(meta(p), Box::new(move || order.lock().push(i)));
        }
        run_graph(g, 1);
        assert_eq!(order.into_inner(), vec![1, 2, 0]);
    }

    #[test]
    fn timeline_has_all_spans() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..10 {
            g.add_task(meta(0), Box::new(|| std::hint::black_box(())));
        }
        let stats = run_graph(g, 2);
        let total: usize = stats.timeline.lanes.iter().map(|l| l.len()).sum();
        assert_eq!(total, 10);
        stats.timeline.validate();
    }

    #[test]
    fn task_panic_propagates() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        g.add_task(meta(0), Box::new(|| panic!("boom in task")));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_graph(g, 2)));
        assert!(r.is_err());
    }

    #[test]
    fn scoped_borrow_of_external_data() {
        // Tasks mutate disjoint slots of a borrowed buffer.
        let mut data = vec![0u64; 8];
        {
            let slots: Vec<_> = data.iter_mut().collect();
            let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
            for (i, slot) in slots.into_iter().enumerate() {
                g.add_task(meta(0), Box::new(move || *slot = i as u64 + 1));
            }
            run_graph(g, 4);
        }
        assert_eq!(data, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
