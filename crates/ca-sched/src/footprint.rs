//! First-class task access footprints.
//!
//! The DAG builders declare each task's block reads/writes to
//! [`crate::BlockTracker`] to infer dependency edges. Historically those
//! declarations were consumed for edges and thrown away; an [`AccessMap`]
//! retains them, so the static verifier ([`crate::verify_graph`]) can prove
//! that every conflicting pair of tasks is ordered, and checked execution
//! mode can audit runtime accesses against the declarations.
//!
//! Footprints come at two granularities. Block regions ([`BlockRegion`])
//! name whole `b × b` tiles of the block grid; element rects
//! ([`ElemRect`]) name exact element rectangles, which lets a task declare a
//! sub-tile footprint (e.g. only the upper triangle of a factored diagonal
//! tile). A map carrying element rects must also carry the matrix
//! *geometry* ([`AccessMap::set_geometry`]) so block regions and rects can
//! be resolved into one element-coordinate space.

use crate::task::TaskId;
use ca_matrix::shadow::ElemRect;
use core::ops::Range;

/// A rectangular region of the block grid: blocks `(i, j)` for `i` in
/// `rows`, `j` in `cols`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRegion {
    /// Block-row range (half-open).
    pub rows: Range<usize>,
    /// Block-column range (half-open).
    pub cols: Range<usize>,
}

impl BlockRegion {
    /// `true` if the region contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() || self.cols.is_empty()
    }

    /// The element rectangle this region covers on a matrix of `b`-sized
    /// blocks, clamped to the `m × n` matrix extent.
    pub fn to_elem_rect(&self, b: usize, m: usize, n: usize) -> ElemRect {
        ElemRect::new(
            (self.rows.start * b).min(m)..(self.rows.end * b).min(m),
            (self.cols.start * b).min(n)..(self.cols.end * b).min(n),
        )
    }
}

impl core::fmt::Display for BlockRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "blocks ({}..{}, {}..{})",
            self.rows.start, self.rows.end, self.cols.start, self.cols.end
        )
    }
}

/// Per-task declared read/write regions over an `mb × nb` block grid.
///
/// Built as a side effect of [`crate::BlockTracker::read`] /
/// [`crate::BlockTracker::write`]; retrieve it with
/// [`crate::BlockTracker::into_access_map`] and hand it (together with the
/// graph) to [`crate::verify_graph`] or to the checked executors.
#[derive(Clone, Debug, Default)]
pub struct AccessMap {
    mb: usize,
    nb: usize,
    geometry: Option<(usize, usize, usize)>,
    reads: Vec<Vec<BlockRegion>>,
    writes: Vec<Vec<BlockRegion>>,
    elem_reads: Vec<Vec<ElemRect>>,
    elem_writes: Vec<Vec<ElemRect>>,
}

impl AccessMap {
    /// An empty map over an `mb × nb` block grid.
    pub fn new(mb: usize, nb: usize) -> Self {
        Self {
            mb,
            nb,
            geometry: None,
            reads: Vec::new(),
            writes: Vec::new(),
            elem_reads: Vec::new(),
            elem_writes: Vec::new(),
        }
    }

    /// Block-grid dimensions `(mb, nb)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.mb, self.nb)
    }

    /// Attaches the matrix geometry: block size `b` over an `m × n` matrix.
    ///
    /// Required before recording element rects and before any consumer can
    /// resolve block regions to element coordinates. The block grid must be
    /// exactly the one `b` induces on `m × n` — a builder using phantom grid
    /// resources (extra rows/columns that model side storage) cannot attach
    /// a geometry, because its block coordinates have no element meaning.
    pub fn set_geometry(&mut self, b: usize, m: usize, n: usize) {
        assert!(b > 0 && m > 0 && n > 0, "degenerate geometry");
        assert_eq!(
            (m.div_ceil(b), n.div_ceil(b)),
            (self.mb, self.nb),
            "geometry {m}×{n} / b={b} does not induce the {}×{} block grid",
            self.mb,
            self.nb
        );
        self.geometry = Some((b, m, n));
    }

    /// The attached geometry `(b, m, n)`, if any.
    pub fn geometry(&self) -> Option<(usize, usize, usize)> {
        self.geometry
    }

    /// One past the highest task id with any recorded region.
    pub fn tasks(&self) -> usize {
        self.reads
            .len()
            .max(self.writes.len())
            .max(self.elem_reads.len())
            .max(self.elem_writes.len())
    }

    /// Total number of recorded block regions (reads + writes).
    pub fn region_count(&self) -> usize {
        self.reads.iter().chain(self.writes.iter()).map(Vec::len).sum()
    }

    /// Total number of recorded element rects (reads + writes).
    pub fn elem_rect_count(&self) -> usize {
        self.elem_reads.iter().chain(self.elem_writes.iter()).map(Vec::len).sum()
    }

    fn slot<R>(vec: &mut Vec<Vec<R>>, task: TaskId) -> &mut Vec<R> {
        if task >= vec.len() {
            vec.resize_with(task + 1, Vec::new);
        }
        &mut vec[task]
    }

    /// Records that `task` reads the block region `rows × cols`.
    pub fn record_read(&mut self, task: TaskId, rows: Range<usize>, cols: Range<usize>) {
        let region = BlockRegion { rows, cols };
        if !region.is_empty() {
            Self::slot(&mut self.reads, task).push(region);
        }
    }

    /// Records that `task` writes the block region `rows × cols`.
    pub fn record_write(&mut self, task: TaskId, rows: Range<usize>, cols: Range<usize>) {
        let region = BlockRegion { rows, cols };
        if !region.is_empty() {
            Self::slot(&mut self.writes, task).push(region);
        }
    }

    /// Records that `task` reads the element rectangle `rect` (requires an
    /// attached geometry).
    pub fn record_read_rect(&mut self, task: TaskId, rect: ElemRect) {
        assert!(self.geometry.is_some(), "element rects need a geometry");
        if !rect.is_empty() {
            Self::slot(&mut self.elem_reads, task).push(rect);
        }
    }

    /// Records that `task` writes the element rectangle `rect` (requires an
    /// attached geometry).
    pub fn record_write_rect(&mut self, task: TaskId, rect: ElemRect) {
        assert!(self.geometry.is_some(), "element rects need a geometry");
        if !rect.is_empty() {
            Self::slot(&mut self.elem_writes, task).push(rect);
        }
    }

    /// Declared read regions of `task` (empty for tasks that touch no
    /// blocks, e.g. reduction-tree nodes passing data through side storage).
    pub fn reads(&self, task: TaskId) -> &[BlockRegion] {
        self.reads.get(task).map_or(&[], Vec::as_slice)
    }

    /// Declared write regions of `task`.
    pub fn writes(&self, task: TaskId) -> &[BlockRegion] {
        self.writes.get(task).map_or(&[], Vec::as_slice)
    }

    /// Declared element read rects of `task`.
    pub fn elem_reads(&self, task: TaskId) -> &[ElemRect] {
        self.elem_reads.get(task).map_or(&[], Vec::as_slice)
    }

    /// Declared element write rects of `task`.
    pub fn elem_writes(&self, task: TaskId) -> &[ElemRect] {
        self.elem_writes.get(task).map_or(&[], Vec::as_slice)
    }

    /// The `(b, m, n)` space used to resolve footprints to element
    /// coordinates: the attached geometry, or the unit-block fallback
    /// (`b = 1`, matrix = block grid) when none is attached.
    pub fn resolution_space(&self) -> (usize, usize, usize) {
        self.geometry.unwrap_or((1, self.mb, self.nb))
    }

    /// `task`'s full read footprint in element coordinates: block regions
    /// resolved through [`Self::resolution_space`], plus declared rects.
    pub fn resolved_reads(&self, task: TaskId) -> Vec<ElemRect> {
        let (b, m, n) = self.resolution_space();
        self.reads(task)
            .iter()
            .map(|r| r.to_elem_rect(b, m, n))
            .chain(self.elem_reads(task).iter().copied())
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// `task`'s full write footprint in element coordinates.
    pub fn resolved_writes(&self, task: TaskId) -> Vec<ElemRect> {
        let (b, m, n) = self.resolution_space();
        self.writes(task)
            .iter()
            .map(|r| r.to_elem_rect(b, m, n))
            .chain(self.elem_writes(task).iter().copied())
            .filter(|r| !r.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_regions() {
        let mut m = AccessMap::new(4, 4);
        m.record_read(0, 0..2, 0..1);
        m.record_write(0, 2..4, 0..1);
        m.record_write(2, 0..1, 1..2);
        assert_eq!(m.tasks(), 3);
        assert_eq!(m.region_count(), 3);
        assert_eq!(m.reads(0), &[BlockRegion { rows: 0..2, cols: 0..1 }]);
        assert_eq!(m.writes(0), &[BlockRegion { rows: 2..4, cols: 0..1 }]);
        assert!(m.reads(1).is_empty());
        assert!(m.writes(1).is_empty());
        assert!(m.reads(7).is_empty(), "out-of-range task has empty footprint");
    }

    #[test]
    fn empty_regions_are_dropped() {
        let mut m = AccessMap::new(4, 4);
        m.record_read(0, 2..2, 0..4);
        m.record_write(0, 0..4, 1..1);
        assert_eq!(m.region_count(), 0);
    }

    #[test]
    fn geometry_resolves_blocks_to_clamped_rects() {
        let mut m = AccessMap::new(3, 2);
        m.set_geometry(4, 10, 7); // 10×7 matrix, 4-blocks → 3×2 grid
        m.record_write(0, 2..3, 1..2); // last block both ways: clamped
        m.record_read_rect(0, ElemRect::new(0..3, 0..1));
        let w = m.resolved_writes(0);
        assert_eq!(w, vec![ElemRect::new(8..10, 4..7)]);
        let r = m.resolved_reads(0);
        assert_eq!(r, vec![ElemRect::new(0..3, 0..1)]);
        assert_eq!(m.elem_rect_count(), 1);
        assert_eq!(m.tasks(), 1);
    }

    #[test]
    fn unit_block_fallback_without_geometry() {
        let mut m = AccessMap::new(4, 4);
        m.record_read(1, 1..3, 0..2);
        assert_eq!(m.resolution_space(), (1, 4, 4));
        assert_eq!(m.resolved_reads(1), vec![ElemRect::new(1..3, 0..2)]);
    }

    #[test]
    #[should_panic(expected = "does not induce")]
    fn mismatched_geometry_is_rejected() {
        let mut m = AccessMap::new(4, 5); // 5 block cols: a phantom column
        m.set_geometry(4, 16, 16); // 16/4 = 4 ≠ 5
    }

    #[test]
    #[should_panic(expected = "need a geometry")]
    fn rects_without_geometry_are_rejected() {
        let mut m = AccessMap::new(4, 4);
        m.record_read_rect(0, ElemRect::new(0..1, 0..1));
    }
}
