//! First-class task access footprints.
//!
//! The DAG builders declare each task's block reads/writes to
//! [`crate::BlockTracker`] to infer dependency edges. Historically those
//! declarations were consumed for edges and thrown away; an [`AccessMap`]
//! retains them, so the static verifier ([`crate::verify_graph`]) can prove
//! that every conflicting pair of tasks is ordered, and checked execution
//! mode can audit runtime accesses against the declarations.

use crate::task::TaskId;
use core::ops::Range;

/// A rectangular region of the block grid: blocks `(i, j)` for `i` in
/// `rows`, `j` in `cols`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRegion {
    /// Block-row range (half-open).
    pub rows: Range<usize>,
    /// Block-column range (half-open).
    pub cols: Range<usize>,
}

impl BlockRegion {
    /// `true` if the region contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() || self.cols.is_empty()
    }
}

impl core::fmt::Display for BlockRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "blocks ({}..{}, {}..{})",
            self.rows.start, self.rows.end, self.cols.start, self.cols.end
        )
    }
}

/// Per-task declared block read/write regions over an `mb × nb` block grid.
///
/// Built as a side effect of [`crate::BlockTracker::read`] /
/// [`crate::BlockTracker::write`]; retrieve it with
/// [`crate::BlockTracker::into_access_map`] and hand it (together with the
/// graph) to [`crate::verify_graph`] or to the checked executors.
#[derive(Clone, Debug, Default)]
pub struct AccessMap {
    mb: usize,
    nb: usize,
    reads: Vec<Vec<BlockRegion>>,
    writes: Vec<Vec<BlockRegion>>,
}

impl AccessMap {
    /// An empty map over an `mb × nb` block grid.
    pub fn new(mb: usize, nb: usize) -> Self {
        Self { mb, nb, reads: Vec::new(), writes: Vec::new() }
    }

    /// Block-grid dimensions `(mb, nb)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.mb, self.nb)
    }

    /// One past the highest task id with any recorded region.
    pub fn tasks(&self) -> usize {
        self.reads.len().max(self.writes.len())
    }

    /// Total number of recorded regions (reads + writes).
    pub fn region_count(&self) -> usize {
        self.reads.iter().chain(self.writes.iter()).map(Vec::len).sum()
    }

    fn slot(vec: &mut Vec<Vec<BlockRegion>>, task: TaskId) -> &mut Vec<BlockRegion> {
        if task >= vec.len() {
            vec.resize_with(task + 1, Vec::new);
        }
        &mut vec[task]
    }

    /// Records that `task` reads the block region `rows × cols`.
    pub fn record_read(&mut self, task: TaskId, rows: Range<usize>, cols: Range<usize>) {
        let region = BlockRegion { rows, cols };
        if !region.is_empty() {
            Self::slot(&mut self.reads, task).push(region);
        }
    }

    /// Records that `task` writes the block region `rows × cols`.
    pub fn record_write(&mut self, task: TaskId, rows: Range<usize>, cols: Range<usize>) {
        let region = BlockRegion { rows, cols };
        if !region.is_empty() {
            Self::slot(&mut self.writes, task).push(region);
        }
    }

    /// Declared read regions of `task` (empty for tasks that touch no
    /// blocks, e.g. reduction-tree nodes passing data through side storage).
    pub fn reads(&self, task: TaskId) -> &[BlockRegion] {
        self.reads.get(task).map_or(&[], Vec::as_slice)
    }

    /// Declared write regions of `task`.
    pub fn writes(&self, task: TaskId) -> &[BlockRegion] {
        self.writes.get(task).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_regions() {
        let mut m = AccessMap::new(4, 4);
        m.record_read(0, 0..2, 0..1);
        m.record_write(0, 2..4, 0..1);
        m.record_write(2, 0..1, 1..2);
        assert_eq!(m.tasks(), 3);
        assert_eq!(m.region_count(), 3);
        assert_eq!(m.reads(0), &[BlockRegion { rows: 0..2, cols: 0..1 }]);
        assert_eq!(m.writes(0), &[BlockRegion { rows: 2..4, cols: 0..1 }]);
        assert!(m.reads(1).is_empty());
        assert!(m.writes(1).is_empty());
        assert!(m.reads(7).is_empty(), "out-of-range task has empty footprint");
    }

    #[test]
    fn empty_regions_are_dropped() {
        let mut m = AccessMap::new(4, 4);
        m.record_read(0, 2..2, 0..4);
        m.record_write(0, 0..4, 1..1);
        assert_eq!(m.region_count(), 0);
    }
}
