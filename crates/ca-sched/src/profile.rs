//! Scheduler-native profiling: full task-lifecycle records, derived
//! metrics, and an extended Chrome-trace emitter.
//!
//! The paper's evaluation is an observability argument — Figures 3–4 show
//! panel idle time disappearing under TSLU panels plus the lookahead-of-1
//! priority rule, and the MKL/PLASMA comparisons hinge on achieved GFlop/s
//! per kernel class. This module captures the evidence needed to make those
//! claims quantitative on our own runtime:
//!
//! * [`Profile`] — one record per executed task (ready → dispatch → start →
//!   end, worker lane, kernel class, flop/byte estimates), the DAG edges,
//!   ready-queue depth samples (central queue and simulator), per-worker
//!   steal counters (work-stealing pool), and the cancelled-task set.
//! * [`SchedMetrics`] — the derived report: dispatch-latency distribution,
//!   per-kind busy breakdown, per-kernel-class achieved GFlop/s and GB/s
//!   (roofline attribution), critical-path length vs makespan (scheduling
//!   efficiency), and the lookahead-effectiveness metric (how long each
//!   step's panel sat ready before starting — the Fig. 3 vs Fig. 4
//!   contrast as a number).
//! * [`Profile::chrome_trace`] — Chrome trace-event JSON with span events,
//!   process/thread-name metadata, flow events for DAG edges, and a
//!   ready-queue counter track.
//!
//! Profiles come from [`crate::profile_run_graph`],
//! [`crate::profile_run_graph_stealing`], and [`crate::profile_simulate`];
//! the simulator path is fully deterministic, so tests can assert exact
//! metric values.

use crate::task::{KernelClass, TaskId, TaskKind, TaskLabel, TaskMeta};
use crate::trace::{trace_category, trace_metadata_events, Span, Timeline, TRACE_PID};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The full lifecycle of one executed task.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct TaskRecord {
    /// Task id in the source graph.
    pub task: TaskId,
    /// Task identity (kind, step, coordinates).
    pub label: TaskLabel,
    /// Kernel class performing the flops.
    pub class: KernelClass,
    /// Estimated flops (from [`TaskMeta`]).
    pub flops: f64,
    /// Estimated memory traffic in bytes (from [`TaskMeta`]).
    pub bytes: f64,
    /// Worker lane that executed the task.
    pub worker: usize,
    /// Time the task became ready (all predecessors complete; roots at 0).
    pub ready: f64,
    /// Time a worker claimed the task from the ready set.
    pub dispatch: f64,
    /// Execution start time.
    pub start: f64,
    /// Execution end time.
    pub end: f64,
}

impl TaskRecord {
    /// Execution duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Dispatch latency: how long the task sat ready before starting.
    pub fn wait(&self) -> f64 {
        (self.start - self.ready).max(0.0)
    }
}

/// One sample of the ready-set depth (central priority queue or simulator
/// ready heap), taken at every enqueue/dequeue.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueueSample {
    /// Sample time in seconds.
    pub t: f64,
    /// Number of ready, unclaimed tasks at that instant.
    pub depth: usize,
}

/// Per-worker steal counters (work-stealing pool only).
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct StealStats {
    /// Steal rounds attempted: the worker's local deque was empty and it
    /// went to the injector / peer deques.
    pub attempts: u64,
    /// Rounds that obtained a task from the injector or a peer.
    pub hits: u64,
}

/// A complete execution profile, as recorded by one of the `profile_*`
/// entry points. Serializable, so it can be committed as a benchmark
/// baseline; [`Profile::metrics`] derives the human-meaningful summary.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Profile {
    /// Which executor produced the profile: `"priority-queue"`,
    /// `"work-stealing"`, or `"simulator"`.
    pub scheduler: String,
    /// Number of worker lanes.
    pub nworkers: usize,
    /// Total wall (or simulated) time in seconds.
    pub makespan: f64,
    /// One record per executed task, sorted by start time. Cancelled tasks
    /// never appear here.
    pub records: Vec<TaskRecord>,
    /// The DAG edges (`before → after`), for flow events and the measured
    /// critical path.
    pub edges: Vec<(TaskId, TaskId)>,
    /// Ready-set depth samples (empty for the work-stealing pool, whose
    /// ready set is distributed).
    pub queue_samples: Vec<QueueSample>,
    /// Per-worker steal counters (empty unless work stealing).
    pub steals: Vec<StealStats>,
    /// Tasks cancelled because a transitive predecessor failed.
    pub cancelled: Vec<TaskId>,
}

impl Profile {
    /// Rebuilds the lane-per-worker [`Timeline`] view of the profile.
    pub fn timeline(&self) -> Timeline {
        let mut tl = Timeline::new(self.nworkers);
        for r in &self.records {
            tl.lanes[r.worker].push(Span {
                task: r.task,
                label: r.label,
                start: r.start,
                end: r.end,
            });
        }
        for lane in &mut tl.lanes {
            lane.sort_by(|a, b| a.start.total_cmp(&b.start));
        }
        tl.makespan = self.makespan;
        tl
    }

    /// Length of the critical path through the executed DAG using
    /// *measured* durations (cancelled tasks contribute zero).
    pub fn critical_path_seconds(&self) -> f64 {
        let n = self
            .records
            .iter()
            .map(|r| r.task + 1)
            .chain(self.edges.iter().map(|&(a, b)| a.max(b) + 1))
            .max()
            .unwrap_or(0);
        let mut dur = vec![0.0f64; n];
        for r in &self.records {
            dur[r.task] = r.duration();
        }
        let mut adj: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
        }
        // Task ids are a topological order by graph construction.
        let mut dist = vec![0.0f64; n];
        let mut best = 0.0f64;
        for id in 0..n {
            let d = dist[id] + dur[id];
            best = best.max(d);
            for &s in &adj[id] {
                if dist[s] < d {
                    dist[s] = d;
                }
            }
        }
        best
    }

    /// Derives the full metric report.
    pub fn metrics(&self) -> SchedMetrics {
        let tasks = self.records.len();
        let busy: f64 = self.records.iter().map(|r| r.duration()).sum();
        let worker_time = self.makespan * self.nworkers as f64;
        let utilization = if worker_time > 0.0 { busy / worker_time } else { 0.0 };

        // Dispatch-latency distribution.
        let mut waits: Vec<f64> = self.records.iter().map(|r| r.wait()).collect();
        waits.sort_by(f64::total_cmp);
        let dispatch_latency = LatencyStats::from_sorted(&waits);

        // Busy time per task kind.
        const KINDS: [TaskKind; 6] = [
            TaskKind::Panel,
            TaskKind::LBlock,
            TaskKind::URow,
            TaskKind::Update,
            TaskKind::Swap,
            TaskKind::Other,
        ];
        let by_kind: Vec<KindMetrics> = KINDS
            .iter()
            .filter_map(|&k| {
                let (mut count, mut secs) = (0usize, 0.0f64);
                for r in self.records.iter().filter(|r| r.label.kind == k) {
                    count += 1;
                    secs += r.duration();
                }
                (count > 0).then(|| KindMetrics {
                    kind: format!("{k:?}"),
                    code: k.code(),
                    tasks: count,
                    busy_seconds: secs,
                    busy_share: if busy > 0.0 { secs / busy } else { 0.0 },
                })
            })
            .collect();

        // Roofline attribution per kernel class.
        const CLASSES: [KernelClass; 9] = [
            KernelClass::Gemm,
            KernelClass::Trsm,
            KernelClass::Larfb,
            KernelClass::LuBlas2,
            KernelClass::LuRecursive,
            KernelClass::QrBlas2,
            KernelClass::QrRecursive,
            KernelClass::Memory,
            KernelClass::Other,
        ];
        let by_class: Vec<ClassMetrics> = CLASSES
            .iter()
            .filter_map(|&c| {
                let (mut count, mut secs, mut fl, mut by) = (0usize, 0.0f64, 0.0f64, 0.0f64);
                for r in self.records.iter().filter(|r| r.class == c) {
                    count += 1;
                    secs += r.duration();
                    fl += r.flops;
                    by += r.bytes;
                }
                (count > 0).then(|| ClassMetrics {
                    class: format!("{c:?}"),
                    tasks: count,
                    busy_seconds: secs,
                    flops: fl,
                    bytes: by,
                    gflops: if secs > 0.0 { fl / secs / 1e9 } else { 0.0 },
                    gbytes_per_sec: if secs > 0.0 { by / secs / 1e9 } else { 0.0 },
                })
            })
            .collect();

        // Steals.
        let steal_attempts = self.steals.iter().map(|s| s.attempts).sum();
        let steal_hits = self.steals.iter().map(|s| s.hits).sum();

        // Queue depth.
        let max_queue_depth = self.queue_samples.iter().map(|s| s.depth).max().unwrap_or(0);
        let mean_queue_depth = if self.queue_samples.is_empty() {
            0.0
        } else {
            self.queue_samples.iter().map(|s| s.depth as f64).sum::<f64>()
                / self.queue_samples.len() as f64
        };

        // Scheduling efficiency: makespan against the two lower bounds.
        let critical_path_seconds = self.critical_path_seconds();
        let work_bound = if self.nworkers > 0 { busy / self.nworkers as f64 } else { 0.0 };
        let efficiency = if self.makespan > 0.0 {
            critical_path_seconds.max(work_bound) / self.makespan
        } else {
            0.0
        };

        SchedMetrics {
            scheduler: self.scheduler.clone(),
            nworkers: self.nworkers,
            tasks,
            cancelled: self.cancelled.len(),
            makespan: self.makespan,
            busy_seconds: busy,
            utilization,
            dispatch_latency,
            by_kind,
            by_class,
            steal_attempts,
            steal_hits,
            max_queue_depth,
            mean_queue_depth,
            critical_path_seconds,
            work_bound_seconds: work_bound,
            efficiency,
            lookahead: self.lookahead_metrics(),
        }
    }

    /// The lookahead-effectiveness metric: for each panel step `K`, the gap
    /// between the instant step `K`'s first panel task became ready and the
    /// instant it started. With the lookahead-of-1 priority rule and
    /// parallel panels (Figure 4), these waits collapse toward zero; without
    /// it (Figure 3) panels queue behind stale trailing updates.
    pub fn lookahead_metrics(&self) -> LookaheadMetrics {
        use std::collections::BTreeMap;
        let mut steps: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
        for r in self.records.iter().filter(|r| r.label.kind == TaskKind::Panel) {
            let e = steps.entry(r.label.step).or_insert((f64::INFINITY, f64::INFINITY));
            e.0 = e.0.min(r.ready);
            e.1 = e.1.min(r.start);
        }
        let per_step: Vec<PanelWait> = steps
            .into_iter()
            .map(|(step, (ready, start))| PanelWait {
                step,
                ready,
                start,
                wait: (start - ready).max(0.0),
            })
            .collect();
        let total: f64 = per_step.iter().map(|s| s.wait).sum();
        let max = per_step.iter().map(|s| s.wait).fold(0.0f64, f64::max);
        let worst_step = per_step
            .iter()
            .max_by(|a, b| a.wait.total_cmp(&b.wait))
            .map(|s| s.step)
            .unwrap_or(0);
        LookaheadMetrics {
            panel_steps: per_step.len(),
            total_wait: total,
            mean_wait: if per_step.is_empty() { 0.0 } else { total / per_step.len() as f64 },
            max_wait: max,
            worst_step,
            per_step,
        }
    }

    /// Chrome trace-event JSON of the full profile: span events with
    /// per-task args (class, flops, dispatch latency), process/thread-name
    /// metadata, flow events for every executed DAG edge, and counter
    /// tracks for ready-queue depth and cumulative completed tasks. Load in
    /// Perfetto or `chrome://tracing`.
    pub fn chrome_trace(&self) -> String {
        let mut events = trace_metadata_events(self.nworkers, "ca-factor");

        // Span events with profiling args.
        for r in &self.records {
            events.push(serde_json::json!({
                "name": r.label.to_string(),
                "cat": trace_category(r.label.kind),
                "ph": "X",
                "ts": r.start * 1e6,
                "dur": r.duration() * 1e6,
                "pid": TRACE_PID,
                "tid": r.worker,
                "args": serde_json::json!({
                    "class": format!("{:?}", r.class),
                    "flops": r.flops,
                    "bytes": r.bytes,
                    "wait_us": r.wait() * 1e6,
                }),
            }));
        }

        // Flow events along DAG edges between executed tasks.
        let mut where_is: std::collections::HashMap<TaskId, (usize, f64, f64)> =
            std::collections::HashMap::with_capacity(self.records.len());
        for r in &self.records {
            where_is.insert(r.task, (r.worker, r.start, r.end));
        }
        for (eid, &(a, b)) in self.edges.iter().enumerate() {
            let (Some(&(wa, _, ea)), Some(&(wb, sb, _))) = (where_is.get(&a), where_is.get(&b))
            else {
                continue; // cancelled endpoint: no flow
            };
            events.push(serde_json::json!({
                "name": "dep", "cat": "dep", "ph": "s", "id": eid,
                "ts": ea * 1e6, "pid": TRACE_PID, "tid": wa,
            }));
            events.push(serde_json::json!({
                "name": "dep", "cat": "dep", "ph": "f", "bp": "e", "id": eid,
                "ts": sb * 1e6, "pid": TRACE_PID, "tid": wb,
            }));
        }

        // Counter track: ready-queue depth over time.
        for s in &self.queue_samples {
            events.push(serde_json::json!({
                "name": "ready tasks", "ph": "C", "pid": TRACE_PID,
                "ts": s.t * 1e6, "args": serde_json::json!({"ready": s.depth}),
            }));
        }
        // Counter track: cumulative completed tasks.
        let mut ends: Vec<f64> = self.records.iter().map(|r| r.end).collect();
        ends.sort_by(f64::total_cmp);
        for (i, &t) in ends.iter().enumerate() {
            events.push(serde_json::json!({
                "name": "completed tasks", "ph": "C", "pid": TRACE_PID,
                "ts": t * 1e6, "args": serde_json::json!({"done": i + 1}),
            }));
        }

        serde_json::to_string(&events).expect("serializable")
    }
}

/// Summary statistics of a latency distribution (seconds).
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Log-scale histogram: `(upper_bound_seconds, count)` per bucket; the
    /// last bucket's bound is `f64::INFINITY`.
    pub histogram: Vec<(f64, usize)>,
}

impl LatencyStats {
    /// Bucket upper bounds: 1 µs … 1 s, then overflow.
    const BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, f64::INFINITY];

    fn from_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return Self::default();
        }
        let n = sorted.len();
        let pick = |q: f64| sorted[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
        let mut histogram: Vec<(f64, usize)> = Self::BOUNDS.iter().map(|&b| (b, 0)).collect();
        for &w in sorted {
            let slot = Self::BOUNDS.iter().position(|&b| w <= b).unwrap_or(7);
            histogram[slot].1 += 1;
        }
        Self {
            count: n,
            min: sorted[0],
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            max: sorted[n - 1],
            histogram,
        }
    }
}

/// Busy-time breakdown for one task kind.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct KindMetrics {
    /// Kind name (`Panel`, `Update`, …).
    pub kind: String,
    /// One-letter trace code (P/L/U/S/W/O).
    pub code: char,
    /// Tasks executed.
    pub tasks: usize,
    /// Total busy seconds.
    pub busy_seconds: f64,
    /// Fraction of total busy time.
    pub busy_share: f64,
}

/// Roofline attribution for one kernel class.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ClassMetrics {
    /// Kernel class name (`Gemm`, `LuBlas2`, …).
    pub class: String,
    /// Tasks executed.
    pub tasks: usize,
    /// Total busy seconds.
    pub busy_seconds: f64,
    /// Total estimated flops.
    pub flops: f64,
    /// Total estimated bytes moved.
    pub bytes: f64,
    /// Achieved GFlop/s (`flops / busy_seconds / 1e9`).
    pub gflops: f64,
    /// Achieved GB/s (`bytes / busy_seconds / 1e9`).
    pub gbytes_per_sec: f64,
}

/// Per-panel-step wait of the lookahead metric.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct PanelWait {
    /// Panel iteration `K`.
    pub step: usize,
    /// When the step's first panel task became ready.
    pub ready: f64,
    /// When it started.
    pub start: f64,
    /// `start - ready`, clamped at zero.
    pub wait: f64,
}

/// The lookahead-effectiveness metric (see
/// [`Profile::lookahead_metrics`]).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct LookaheadMetrics {
    /// Number of panel steps observed.
    pub panel_steps: usize,
    /// Sum of per-step panel waits (seconds).
    pub total_wait: f64,
    /// Mean per-step panel wait.
    pub mean_wait: f64,
    /// Worst per-step panel wait.
    pub max_wait: f64,
    /// Step with the worst wait.
    pub worst_step: usize,
    /// The full per-step series.
    pub per_step: Vec<PanelWait>,
}

/// The derived metric report of a [`Profile`] — serializable (benchmark
/// baselines) and renderable ([`SchedMetrics::render`]).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SchedMetrics {
    /// Executor that produced the profile.
    pub scheduler: String,
    /// Worker lanes.
    pub nworkers: usize,
    /// Tasks executed.
    pub tasks: usize,
    /// Tasks cancelled by failures.
    pub cancelled: usize,
    /// Total wall/simulated seconds.
    pub makespan: f64,
    /// Total busy worker-seconds.
    pub busy_seconds: f64,
    /// `busy / (makespan · nworkers)`.
    pub utilization: f64,
    /// Ready → start latency distribution.
    pub dispatch_latency: LatencyStats,
    /// Busy breakdown per task kind.
    pub by_kind: Vec<KindMetrics>,
    /// Roofline attribution per kernel class.
    pub by_class: Vec<ClassMetrics>,
    /// Total peer-steal rounds attempted (work-stealing pool).
    pub steal_attempts: u64,
    /// Successful peer steals.
    pub steal_hits: u64,
    /// Deepest observed ready queue.
    pub max_queue_depth: usize,
    /// Mean sampled ready-queue depth.
    pub mean_queue_depth: f64,
    /// Critical path through the DAG with measured durations.
    pub critical_path_seconds: f64,
    /// `busy / nworkers` — the other makespan lower bound.
    pub work_bound_seconds: f64,
    /// `max(critical_path, work_bound) / makespan`, 1.0 = optimal schedule.
    pub efficiency: f64,
    /// The lookahead-effectiveness metric.
    pub lookahead: LookaheadMetrics,
}

/// Engineering-style time formatting for reports.
fn fmt_time(s: f64) -> String {
    if s == 0.0 {
        "0s".to_string()
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

impl SchedMetrics {
    /// Renders the human-readable profile report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} scheduler, {} workers, {} tasks{}  makespan {}  utilization {:.1}%",
            self.scheduler,
            self.nworkers,
            self.tasks,
            if self.cancelled > 0 { format!(" ({} cancelled)", self.cancelled) } else { String::new() },
            fmt_time(self.makespan),
            self.utilization * 100.0,
        );
        let _ = writeln!(
            out,
            "  scheduling efficiency {:.1}%  (critical path {}, work bound {})",
            self.efficiency * 100.0,
            fmt_time(self.critical_path_seconds),
            fmt_time(self.work_bound_seconds),
        );
        let d = &self.dispatch_latency;
        let _ = writeln!(
            out,
            "  dispatch latency: mean {}  p50 {}  p95 {}  max {}",
            fmt_time(d.mean),
            fmt_time(d.p50),
            fmt_time(d.p95),
            fmt_time(d.max),
        );
        let la = &self.lookahead;
        let _ = writeln!(
            out,
            "  lookahead: {} panel steps, mean panel wait {}, max {} (step {}), total {}",
            la.panel_steps,
            fmt_time(la.mean_wait),
            fmt_time(la.max_wait),
            la.worst_step,
            fmt_time(la.total_wait),
        );
        if self.steal_attempts > 0 {
            let _ = writeln!(
                out,
                "  steals: {} attempts, {} hits ({:.1}%)",
                self.steal_attempts,
                self.steal_hits,
                100.0 * self.steal_hits as f64 / self.steal_attempts as f64,
            );
        }
        if self.max_queue_depth > 0 {
            let _ = writeln!(
                out,
                "  ready queue: max depth {}, mean {:.1}",
                self.max_queue_depth, self.mean_queue_depth,
            );
        }
        for k in &self.by_kind {
            let _ = writeln!(
                out,
                "  kind {} ({:>6}): {:>5} tasks  busy {}  ({:.1}% of busy)",
                k.code,
                k.kind,
                k.tasks,
                fmt_time(k.busy_seconds),
                k.busy_share * 100.0,
            );
        }
        for c in &self.by_class {
            let _ = writeln!(
                out,
                "  class {:>11}: {:>5} tasks  busy {}  {:.2} GFlop/s  {:.2} GB/s",
                c.class,
                c.tasks,
                fmt_time(c.busy_seconds),
                c.gflops,
                c.gbytes_per_sec,
            );
        }
        out
    }
}

impl core::fmt::Display for SchedMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Shared lifecycle recorder threaded through the threaded executors.
/// Ready times cross worker threads (the releaser of a task is not its
/// executor), so they live in per-task atomics; everything else is recorded
/// by the executing worker into its own lane.
pub(crate) struct Collector {
    ready_at: Vec<AtomicU64>,
    records: Vec<Mutex<Vec<TaskRecord>>>,
    queue: Mutex<Vec<QueueSample>>,
    steals: Vec<Mutex<StealStats>>,
}

impl Collector {
    pub(crate) fn new(ntasks: usize, nworkers: usize) -> Self {
        Self {
            ready_at: (0..ntasks).map(|_| AtomicU64::new(0)).collect(),
            records: (0..nworkers).map(|_| Mutex::new(Vec::new())).collect(),
            queue: Mutex::new(Vec::new()),
            steals: (0..nworkers).map(|_| Mutex::new(StealStats::default())).collect(),
        }
    }

    /// Stamps the instant `id` became ready.
    pub(crate) fn mark_ready(&self, id: TaskId, t: f64) {
        self.ready_at[id].store(t.to_bits(), Ordering::Relaxed);
    }

    /// Records the completed lifecycle of a task on `worker`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &self,
        worker: usize,
        id: TaskId,
        meta: &TaskMeta,
        dispatch: f64,
        start: f64,
        end: f64,
    ) {
        let ready = f64::from_bits(self.ready_at[id].load(Ordering::Relaxed));
        self.records[worker].lock().push(TaskRecord {
            task: id,
            label: meta.label,
            class: meta.class,
            flops: meta.flops,
            bytes: meta.bytes,
            worker,
            ready,
            dispatch,
            start,
            end,
        });
    }

    /// Samples the central ready-queue depth.
    pub(crate) fn sample_queue(&self, t: f64, depth: usize) {
        self.queue.lock().push(QueueSample { t, depth });
    }

    /// Counts one peer-steal round on `worker`.
    pub(crate) fn count_steal(&self, worker: usize, hit: bool) {
        let mut s = self.steals[worker].lock();
        s.attempts += 1;
        if hit {
            s.hits += 1;
        }
    }

    /// Assembles the final [`Profile`].
    pub(crate) fn finish(
        self,
        scheduler: &str,
        makespan: f64,
        succs: &[Vec<TaskId>],
        cancelled: Vec<TaskId>,
        keep_steals: bool,
    ) -> Profile {
        let mut records: Vec<TaskRecord> =
            self.records.into_iter().flat_map(|m| m.into_inner()).collect();
        records.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
        let edges = succs
            .iter()
            .enumerate()
            .flat_map(|(a, ss)| ss.iter().map(move |&b| (a, b)))
            .collect();
        let mut queue_samples = self.queue.into_inner();
        queue_samples.sort_by(|a, b| a.t.total_cmp(&b.t));
        Profile {
            scheduler: scheduler.to_string(),
            nworkers: self.steals.len(),
            makespan,
            records,
            edges,
            queue_samples,
            steals: if keep_steals {
                self.steals.into_iter().map(|m| m.into_inner()).collect()
            } else {
                Vec::new()
            },
            cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(task: TaskId, kind: TaskKind, step: usize, w: usize, ready: f64, start: f64, end: f64) -> TaskRecord {
        TaskRecord {
            task,
            label: TaskLabel::new(kind, step, 0, 0),
            class: KernelClass::Gemm,
            flops: 2e9 * (end - start),
            bytes: 1e9 * (end - start),
            worker: w,
            ready,
            dispatch: start,
            start,
            end,
        }
    }

    fn profile(records: Vec<TaskRecord>, edges: Vec<(TaskId, TaskId)>, makespan: f64) -> Profile {
        Profile {
            scheduler: "simulator".into(),
            nworkers: 2,
            makespan,
            records,
            edges,
            queue_samples: vec![QueueSample { t: 0.0, depth: 2 }, QueueSample { t: 1.0, depth: 0 }],
            steals: Vec::new(),
            cancelled: Vec::new(),
        }
    }

    #[test]
    fn metrics_exact_on_hand_built_profile() {
        // Chain 0 -> 1 on worker 0, independent 2 on worker 1.
        let p = profile(
            vec![
                rec(0, TaskKind::Panel, 0, 0, 0.0, 0.0, 1.0),
                rec(1, TaskKind::Update, 0, 0, 1.0, 1.5, 2.0),
                rec(2, TaskKind::Panel, 1, 1, 0.0, 0.25, 1.0),
            ],
            vec![(0, 1)],
            2.0,
        );
        let m = p.metrics();
        assert_eq!(m.tasks, 3);
        assert!((m.busy_seconds - 2.25).abs() < 1e-12);
        assert!((m.utilization - 2.25 / 4.0).abs() < 1e-12);
        // Critical path: 0 (1.0s) -> 1 (0.5s) = 1.5s; work bound 1.125.
        assert!((m.critical_path_seconds - 1.5).abs() < 1e-12);
        assert!((m.efficiency - 1.5 / 2.0).abs() < 1e-12);
        // Dispatch latency: waits are 0.0, 0.5, 0.25.
        assert!((m.dispatch_latency.mean - 0.25).abs() < 1e-12);
        assert!((m.dispatch_latency.max - 0.5).abs() < 1e-12);
        // Lookahead: step 0 wait 0, step 1 wait 0.25.
        assert_eq!(m.lookahead.panel_steps, 2);
        assert!((m.lookahead.max_wait - 0.25).abs() < 1e-12);
        assert_eq!(m.lookahead.worst_step, 1);
        // Class attribution: gemm flops are 2e9 per busy second.
        let g = &m.by_class[0];
        assert_eq!(g.class, "Gemm");
        assert!((g.gflops - 2.0).abs() < 1e-9);
        assert!((g.gbytes_per_sec - 1.0).abs() < 1e-9);
        assert_eq!(m.max_queue_depth, 2);
    }

    #[test]
    fn timeline_roundtrip_checks_clean() {
        let p = profile(
            vec![
                rec(0, TaskKind::Panel, 0, 0, 0.0, 0.0, 1.0),
                rec(1, TaskKind::Update, 0, 0, 1.0, 1.0, 2.0),
                rec(2, TaskKind::Panel, 1, 1, 0.0, 0.0, 1.0),
            ],
            vec![(0, 1)],
            2.0,
        );
        let tl = p.timeline();
        assert_eq!(tl.nworkers(), 2);
        assert_eq!(tl.check(), Ok(()));
        assert_eq!(tl.lanes[0].len(), 2);
    }

    #[test]
    fn chrome_trace_has_flows_counters_and_metadata() {
        let p = profile(
            vec![
                rec(0, TaskKind::Panel, 0, 0, 0.0, 0.0, 1.0),
                rec(1, TaskKind::Update, 0, 1, 1.0, 1.0, 2.0),
            ],
            vec![(0, 1), (1, 7)], // second edge dangles (cancelled): skipped
            2.0,
        );
        let v: serde_json::Value = serde_json::from_str(&p.chrome_trace()).unwrap();
        let arr = v.as_array().unwrap();
        let ph = |p: &str| arr.iter().filter(|e| e["ph"] == p).count();
        assert_eq!(ph("X"), 2);
        assert_eq!(ph("s"), 1, "one flow start for the executed edge");
        assert_eq!(ph("f"), 1);
        assert!(ph("C") >= 2, "counter samples present");
        assert!(arr.iter().any(|e| e["name"] == "thread_name"));
    }

    #[test]
    fn latency_stats_histogram_partitions_samples() {
        let waits = vec![0.0, 5e-7, 3e-5, 2e-4, 0.5];
        let mut sorted = waits.clone();
        sorted.sort_by(f64::total_cmp);
        let s = LatencyStats::from_sorted(&sorted);
        assert_eq!(s.count, 5);
        assert_eq!(s.histogram.iter().map(|&(_, c)| c).sum::<usize>(), 5);
        assert_eq!(s.max, 0.5);
        assert_eq!(s.p50, 3e-5);
    }

    #[test]
    fn report_renders_key_sections() {
        let p = profile(
            vec![
                rec(0, TaskKind::Panel, 0, 0, 0.0, 0.0, 1.0),
                rec(1, TaskKind::Update, 0, 1, 0.0, 0.0, 2.0),
            ],
            vec![],
            2.0,
        );
        let text = p.metrics().render();
        assert!(text.contains("scheduling efficiency"));
        assert!(text.contains("dispatch latency"));
        assert!(text.contains("lookahead"));
        assert!(text.contains("GFlop/s"));
        assert!(text.contains("class"));
    }
}
