//! Checked execution mode: every executor, wrapped by the race detector.
//!
//! A checked run composes three layers:
//!
//! 1. [`crate::verify_graph`] statically proves the graph + declared
//!    footprints sound before anything executes;
//! 2. [`build_shadow_registry`] converts the block-level [`AccessMap`] into
//!    element-level [`TaskFootprint`]s and attaches them to a
//!    [`ShadowRegistry`];
//! 3. the `*_checked` executors run each job inside a
//!    [`ShadowRegistry::enter_task`] scope, so every `SharedMatrix` block
//!    accessor audits its element range against the task's declaration and
//!    against every concurrently live lease.
//!
//! The discrete-event simulator never touches matrix data, so its checked
//! twin ([`try_simulate_checked`]) is the static verification plus the
//! ordinary simulation.

use crate::fault::{ExecError, FaultPlan};
use crate::footprint::AccessMap;
use crate::graph::TaskGraph;
use crate::pool::{ExecStats, Job};
use crate::task::{TaskId, TaskMeta};
use crate::trace::Timeline;
use crate::verify::SoundnessError;
use ca_matrix::{ShadowRegistry, ShadowViolation, TaskFootprint};
use ca_matrix::ElemRect;
use std::sync::Arc;

/// Failure of a checked run: either the run itself failed (panic/injected
/// fault) or the race detector found a soundness violation.
#[derive(Debug)]
pub enum CheckedError {
    /// The underlying execution failed.
    Exec(ExecError),
    /// The shadow registry (or the static verifier) found a violation.
    Soundness(SoundnessError),
}

impl core::fmt::Display for CheckedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Exec(e) => write!(f, "{e}"),
            Self::Soundness(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckedError {}

/// Converts the block-level declarations of `access` (on a `b`-sized block
/// grid over an `m × n` matrix) into an element-level shadow registry for
/// `graph`'s tasks. Block regions are clamped to the matrix, and regions
/// that fall entirely outside (virtual bookkeeping columns some builders
/// use) contribute no element rectangle.
pub fn build_shadow_registry<T>(
    graph: &TaskGraph<T>,
    access: &AccessMap,
    b: usize,
    m: usize,
    n: usize,
) -> Arc<ShadowRegistry> {
    let ntasks = graph.len();
    let to_rects = |regions: &[crate::footprint::BlockRegion]| -> Vec<ElemRect> {
        regions
            .iter()
            .filter_map(|reg| {
                let rect = ElemRect::new(
                    (reg.rows.start * b).min(m)..(reg.rows.end * b).min(m),
                    (reg.cols.start * b).min(n)..(reg.cols.end * b).min(n),
                );
                (!rect.is_empty()).then_some(rect)
            })
            .collect()
    };
    let mut footprints = Vec::with_capacity(ntasks);
    let mut labels = Vec::with_capacity(ntasks);
    for t in 0..ntasks {
        // Element-rect declarations are already in matrix coordinates; they
        // join the resolved block regions directly.
        let mut reads = to_rects(access.reads(t));
        reads.extend(access.elem_reads(t).iter().copied().filter(|r| !r.is_empty()));
        let mut writes = to_rects(access.writes(t));
        writes.extend(access.elem_writes(t).iter().copied().filter(|r| !r.is_empty()));
        footprints.push(TaskFootprint { reads, writes });
        labels.push(graph.meta(t).label.to_string());
    }
    Arc::new(ShadowRegistry::new(footprints, labels))
}

/// Wraps each job so it runs inside a shadow task scope.
fn instrument<'s>(graph: TaskGraph<Job<'s>>, registry: &Arc<ShadowRegistry>) -> TaskGraph<Job<'s>> {
    graph.map(|id, job| {
        let reg = Arc::clone(registry);
        Box::new(move || {
            let _scope = reg.enter_task(id);
            job()
        }) as Job<'s>
    })
}

/// Maps the first recorded shadow violation (if any) to a soundness error.
fn first_violation(registry: &ShadowRegistry) -> Option<SoundnessError> {
    registry.take_violations().into_iter().next().map(|v| match v {
        ShadowViolation::Undeclared { label, write, rect, .. } => SoundnessError::UndeclaredAccess {
            task: label,
            write,
            rows: (rect.row0, rect.row1),
            cols: (rect.col0, rect.col1),
        },
        v @ ShadowViolation::Overlap { .. } => {
            // Report the *intersection* of the two leases — the element
            // rectangle actually raced on — so the dynamic report lines up
            // with the static verifier's rect conflicts.
            let rect = v.conflict_rect().expect("overlap has a conflict rect");
            let ShadowViolation::Overlap { first_label, second_label, .. } = v else {
                unreachable!()
            };
            SoundnessError::Race {
                first: first_label,
                second: second_label,
                rows: (rect.row0, rect.row1),
                cols: (rect.col0, rect.col1),
            }
        }
    })
}

/// [`crate::try_run_graph`] under the dynamic race detector. The
/// `SharedMatrix` the jobs touch must have been built with
/// `SharedMatrix::with_shadow(_, registry)` so its accessors report here.
pub fn try_run_graph_checked<'s>(
    graph: TaskGraph<Job<'s>>,
    nthreads: usize,
    registry: &Arc<ShadowRegistry>,
) -> Result<ExecStats, CheckedError> {
    let stats =
        crate::pool::try_run_graph(instrument(graph, registry), nthreads).map_err(CheckedError::Exec)?;
    match first_violation(registry) {
        None => Ok(stats),
        Some(v) => Err(CheckedError::Soundness(v)),
    }
}

/// Panicking variant of [`try_run_graph_checked`].
pub fn run_graph_checked<'s>(
    graph: TaskGraph<Job<'s>>,
    nthreads: usize,
    registry: &Arc<ShadowRegistry>,
) -> ExecStats {
    match try_run_graph_checked(graph, nthreads, registry) {
        Ok(stats) => stats,
        Err(e) => panic!("checked execution failed: {e}"),
    }
}

/// [`crate::try_run_graph_stealing`] under the dynamic race detector.
pub fn try_run_graph_stealing_checked<'s>(
    graph: TaskGraph<Job<'s>>,
    nthreads: usize,
    registry: &Arc<ShadowRegistry>,
) -> Result<ExecStats, CheckedError> {
    let stats = crate::pool_ws::try_run_graph_stealing(instrument(graph, registry), nthreads)
        .map_err(CheckedError::Exec)?;
    match first_violation(registry) {
        None => Ok(stats),
        Some(v) => Err(CheckedError::Soundness(v)),
    }
}

/// Checked twin of [`crate::try_simulate`]: the simulator executes no matrix
/// code, so "checked" means the static verifier must accept the graph +
/// footprints before the timeline is computed — and the produced timeline
/// must pass the post-hoc write-exclusion check (no two tasks with
/// overlapping declared write rects scheduled concurrently on different
/// workers).
pub fn try_simulate_checked<T>(
    graph: &TaskGraph<T>,
    access: &AccessMap,
    nworkers: usize,
    cost: impl FnMut(TaskId, &TaskMeta) -> f64,
) -> Result<Timeline, CheckedError> {
    crate::verify::verify_graph(graph, access).map_err(CheckedError::Soundness)?;
    let tl = crate::sim::try_simulate(graph, nworkers, cost, &FaultPlan::new())
        .map_err(CheckedError::Exec)?;
    if let Err(e) = tl.check_write_exclusion(access) {
        let crate::trace::TimelineError::ConcurrentWrites { first, second, rect } = e else {
            unreachable!("check_write_exclusion only reports ConcurrentWrites")
        };
        return Err(CheckedError::Soundness(SoundnessError::Race {
            first: graph.meta(first).label.to_string(),
            second: graph.meta(second).label.to_string(),
            rows: (rect.row0, rect.row1),
            cols: (rect.col0, rect.col1),
        }));
    }
    Ok(tl)
}

#[cfg(test)]
// Tests drive raw block accesses on purpose (including deliberately bad
// ones) to prove the shadow registry catches them.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::blockdeps::BlockTracker;
    use crate::pool::job;
    use crate::task::{TaskKind, TaskLabel};
    use ca_matrix::{Matrix, SharedMatrix};
    use std::sync::Barrier;

    fn meta(kind: TaskKind, step: usize, i: usize) -> TaskMeta {
        TaskMeta::new(TaskLabel::new(kind, step, i, 0), 1.0)
    }

    #[test]
    fn clean_graph_executes_without_violations() {
        // Two writers of disjoint blocks, then a reader of both.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut t = BlockTracker::new(2, 1);
        let w0 = g.add_task(meta(TaskKind::Panel, 0, 0), ());
        t.write(&mut g, w0, 0..1, 0..1);
        let w1 = g.add_task(meta(TaskKind::Panel, 0, 1), ());
        t.write(&mut g, w1, 1..2, 0..1);
        let r = g.add_task(meta(TaskKind::Update, 0, 0), ());
        t.read(&mut g, r, 0..2, 0..1);
        let access = t.into_access_map();

        let b = 4;
        let reg = build_shadow_registry(&g, &access, b, 8, 4);
        let shared = SharedMatrix::with_shadow(Matrix::zeros(8, 4), Arc::clone(&reg));
        let a = &shared;
        let jobs = g.map_ref(|id, _| match id {
            0 => job(move || unsafe { a.block_mut(0, 0, 4, 4).fill(1.0) }),
            1 => job(move || unsafe { a.block_mut(4, 0, 4, 4).fill(2.0) }),
            _ => job(move || {
                let v = unsafe { a.block(0, 0, 8, 4) };
                assert_eq!(v.at(0, 0) + v.at(4, 0), 3.0);
            }),
        });
        let stats = try_run_graph_checked(jobs, 2, &reg).expect("sound run");
        assert_eq!(stats.tasks, 3);
        assert!(reg.accesses() >= 3);
    }

    #[test]
    fn out_of_footprint_write_is_reported_with_label() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut t = BlockTracker::new(2, 1);
        let w = g.add_task(meta(TaskKind::Panel, 0, 0), ());
        t.write(&mut g, w, 0..1, 0..1); // declares rows 0..4 only
        let access = t.into_access_map();

        let reg = build_shadow_registry(&g, &access, 4, 8, 4);
        let shared = SharedMatrix::with_shadow(Matrix::zeros(8, 4), Arc::clone(&reg));
        let a = &shared;
        let jobs = g.map_ref(|_, _| {
            job(move || unsafe { a.block_mut(4, 0, 4, 4).fill(9.0) }) // writes rows 4..8
        });
        match try_run_graph_checked(jobs, 1, &reg) {
            Err(CheckedError::Soundness(SoundnessError::UndeclaredAccess {
                task, write, rows, ..
            })) => {
                assert_eq!(task, TaskLabel::new(TaskKind::Panel, 0, 0, 0).to_string());
                assert!(write);
                assert_eq!(rows, (4, 8));
            }
            other => panic!("expected UndeclaredAccess, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_overlapping_writes_are_reported_as_race() {
        // Two root tasks, no ordering edge, both declaring + performing a
        // write of block (0,0). A barrier forces their leases to be live
        // simultaneously so the detection is deterministic.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a_id = g.add_task(meta(TaskKind::Panel, 0, 0), ());
        let b_id = g.add_task(meta(TaskKind::Panel, 0, 1), ());
        let mut access = AccessMap::new(1, 1);
        access.record_write(a_id, 0..1, 0..1);
        access.record_write(b_id, 0..1, 0..1);

        let reg = build_shadow_registry(&g, &access, 4, 4, 4);
        let shared = SharedMatrix::with_shadow(Matrix::zeros(4, 4), Arc::clone(&reg));
        let a = &shared;
        let barrier = Barrier::new(2);
        let bref = &barrier;
        let jobs = g.map_ref(|_, _| {
            job(move || {
                bref.wait(); // both tasks running
                let mut v = unsafe { a.block_mut(0, 0, 4, 4) };
                bref.wait(); // both leases taken before either releases
                v.fill(1.0);
            })
        });
        match try_run_graph_checked(jobs, 2, &reg) {
            Err(CheckedError::Soundness(SoundnessError::Race { first, second, .. })) => {
                let labels = [first, second];
                assert!(labels.contains(&"P[0,0,0]".to_string()), "labels: {labels:?}");
                assert!(labels.contains(&"P[0,1,0]".to_string()), "labels: {labels:?}");
            }
            other => panic!("expected Race, got {other:?}"),
        }
    }

    #[test]
    fn simulate_checked_rejects_unordered_graph() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = g.add_task(meta(TaskKind::Panel, 0, 0), ());
        let b = g.add_task(meta(TaskKind::Panel, 0, 1), ());
        let mut access = AccessMap::new(1, 1);
        access.record_write(a, 0..1, 0..1);
        access.record_write(b, 0..1, 0..1);
        match try_simulate_checked(&g, &access, 2, |_, m| m.flops) {
            Err(CheckedError::Soundness(SoundnessError::UnorderedConflict { .. })) => {}
            other => panic!("expected UnorderedConflict, got {other:?}"),
        }
        // With the ordering edge the same graph simulates fine.
        g.add_dep(a, b);
        try_simulate_checked(&g, &access, 2, |_, m| m.flops).expect("ordered graph simulates");
    }
}
