//! Process-wide persistent worker pool ("hub") for the one-shot executors.
//!
//! [`crate::run_graph`] and [`crate::run_graph_stealing`] historically
//! spawned `nthreads` OS threads per call and joined them before returning.
//! For repeated small factorizations (a server handling many requests, a
//! bench loop, panel-sized problems) the spawn/join cost dominates. This
//! module keeps a lazily-initialized, process-wide set of detached worker
//! threads alive for the lifetime of the process; an executor run borrows
//! threads from the hub instead of creating them.
//!
//! Two details make this safe and fast:
//!
//! * **Lane 0 runs inline on the calling thread.** The caller always makes
//!   progress even if every hub thread is busy, so borrowing can never
//!   deadlock, and an `nthreads == 1` run touches the hub not at all (the
//!   fast path for tiny graphs).
//! * **Worker bodies borrow the caller's stack.** The hub stores
//!   `'static` closures, so bodies are lifetime-erased before submission
//!   and the caller blocks on a completion latch before returning — no
//!   borrow outlives the call (see the safety comment in
//!   [`run_bodies_persistent`]).
//!
//! The hub grows on demand: a submission finding no idle thread spawns one.
//! Threads are never torn down; the steady-state size is the maximum number
//! of concurrently borrowed lanes the process ever needed.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased worker body queued on the hub.
type HubJob = Box<dyn FnOnce() + Send + 'static>;

struct Hub {
    state: Mutex<HubState>,
    cv: Condvar,
}

#[derive(Default)]
struct HubState {
    queue: VecDeque<HubJob>,
    /// Threads parked in [`Hub::cv`] waiting for work.
    idle: usize,
    /// Total threads ever spawned (monotonic; threads never exit).
    spawned: usize,
}

static HUB: OnceLock<Hub> = OnceLock::new();

fn hub() -> &'static Hub {
    HUB.get_or_init(|| Hub { state: Mutex::new(HubState::default()), cv: Condvar::new() })
}

/// Number of threads the process-wide pool has spawned so far. Exposed for
/// tests and the pool-churn microbench (growth must be bounded by peak
/// concurrency, not by call count).
pub fn persistent_pool_threads() -> usize {
    HUB.get().map_or(0, |h| h.state.lock().expect("hub lock").spawned)
}

fn submit(job: HubJob) {
    let h = hub();
    let mut st = h.state.lock().expect("hub lock");
    st.queue.push_back(job);
    if st.idle == 0 {
        st.spawned += 1;
        let name = format!("ca-pool-{}", st.spawned);
        drop(st);
        std::thread::Builder::new()
            .name(name)
            .spawn(hub_worker)
            .expect("spawn persistent pool worker");
    } else {
        drop(st);
        h.cv.notify_one();
    }
}

fn hub_worker() {
    let h = hub();
    loop {
        let job = {
            let mut st = h.state.lock().expect("hub lock");
            loop {
                if let Some(j) = st.queue.pop_front() {
                    break j;
                }
                st.idle += 1;
                st = h.cv.wait(st).expect("hub lock");
                st.idle -= 1;
            }
        };
        // Worker bodies catch task panics internally; a panic escaping here
        // is a runtime bug. Contain it so the hub thread survives (the
        // caller's latch was already released by the unwind).
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            eprintln!("ca-sched: persistent-pool worker body panicked (runtime bug)");
        }
    }
}

/// Countdown latch: the caller blocks until every borrowed lane finished.
struct Latch {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self { count: Mutex::new(n), cv: Condvar::new() }
    }

    fn arrive(&self) {
        let mut c = self.count.lock().expect("latch lock");
        *c -= 1;
        if *c == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut c = self.count.lock().expect("latch lock");
        while *c > 0 {
            c = self.cv.wait(c).expect("latch lock");
        }
    }
}

/// Decrements the latch when dropped — including during unwinding, so a
/// panicking body can never leave the caller waiting forever.
struct ArriveOnDrop<'a>(&'a Latch);

impl Drop for ArriveOnDrop<'_> {
    fn drop(&mut self) {
        self.0.arrive();
    }
}

/// Runs every body to completion: body 0 inline on the calling thread, the
/// rest on hub threads. Returns only after all bodies have returned.
pub(crate) fn run_bodies_persistent(bodies: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let mut it = bodies.into_iter();
    let Some(first) = it.next() else { return };
    let rest: Vec<_> = it.collect();
    if rest.is_empty() {
        // Single lane: run inline, never touch the hub.
        first();
        return;
    }
    let latch = Arc::new(Latch::new(rest.len()));
    for body in rest {
        let latch = Arc::clone(&latch);
        let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            // Declared before the call so it drops *after* the body's
            // captures are destroyed (FnOnce call frames drop captures
            // before returning or unwinding out).
            let _arrive = ArriveOnDrop(&latch);
            body();
        });
        // SAFETY: `wrapped` borrows the caller's stack (executor state such
        // as the ready queue, task slots and the shared matrix). The
        // lifetime is erased to queue it on the process-wide hub, which is
        // sound because this function does not return until `latch.wait()`
        // observes every wrapper finished, and a wrapper only releases the
        // latch (via `ArriveOnDrop`) after the body has returned or its
        // captures were dropped during unwinding. Panic payloads are
        // `'static` by construction (`Box<dyn Any + Send + 'static>`), so
        // nothing borrowed can escape through the unwind either.
        let promoted: HubJob = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, HubJob>(wrapped)
        };
        submit(promoted);
    }
    first();
    latch.wait();
}

/// Runs every body to completion on scoped threads (body 0 inline on the
/// calling thread) — the classic spawn-per-call strategy.
pub(crate) fn run_bodies_scoped(bodies: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let mut it = bodies.into_iter();
    let Some(first) = it.next() else { return };
    let rest: Vec<_> = it.collect();
    if rest.is_empty() {
        first();
        return;
    }
    std::thread::scope(|scope| {
        for body in rest {
            scope.spawn(body);
        }
        first();
    });
}

/// Dispatches to the persistent hub or scoped threads.
pub(crate) fn run_bodies(persistent: bool, bodies: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if persistent {
        run_bodies_persistent(bodies);
    } else {
        run_bodies_scoped(bodies);
    }
}

/// Whether the one-shot executors route through the persistent pool by
/// default (the `persistent-pool` feature flips this; the `*_persistent`
/// entry points always do).
pub(crate) fn default_persistent() -> bool {
    cfg!(feature = "persistent-pool")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_lane_never_touches_hub() {
        let before = persistent_pool_threads();
        let hit = AtomicUsize::new(0);
        for _ in 0..32 {
            let hit = &hit;
            run_bodies_persistent(vec![Box::new(move || {
                hit.fetch_add(1, Ordering::Relaxed);
            })]);
        }
        assert_eq!(hit.load(Ordering::Relaxed), 32);
        assert_eq!(persistent_pool_threads(), before, "lane 0 must run inline");
    }

    #[test]
    fn borrowed_state_is_released_before_return() {
        let mut data = vec![0usize; 4];
        {
            let slots: Vec<_> = data.iter_mut().collect();
            let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .into_iter()
                .enumerate()
                .map(|(i, slot)| {
                    let b: Box<dyn FnOnce() + Send + '_> = Box::new(move || *slot = i + 1);
                    b
                })
                .collect();
            run_bodies_persistent(bodies);
        }
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pool_growth_is_bounded_by_peak_concurrency_not_call_count() {
        // Warm the hub, then hammer it with many multi-lane runs: thread
        // growth must stay far below the number of calls.
        for _ in 0..4 {
            run_bodies_persistent((0..4).map(|_| {
                let b: Box<dyn FnOnce() + Send + '_> = Box::new(|| {});
                b
            }).collect());
        }
        let after_warm = persistent_pool_threads();
        for _ in 0..64 {
            run_bodies_persistent((0..4).map(|_| {
                let b: Box<dyn FnOnce() + Send + '_> = Box::new(|| {});
                b
            }).collect());
        }
        let growth = persistent_pool_threads() - after_warm;
        assert!(growth <= 16, "hub grew by {growth} threads over 64 calls");
    }

    #[test]
    fn panicking_body_releases_the_latch() {
        // The latch must be released during unwinding so the caller
        // returns; the hub thread must survive to serve later calls.
        let ran = AtomicUsize::new(0);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("injected body panic")),
        ];
        run_bodies_persistent(bodies);
        let r = &ran;
        run_bodies_persistent(vec![
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(move || {
                r.fetch_add(1, Ordering::Relaxed);
            }),
        ]);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }
}
