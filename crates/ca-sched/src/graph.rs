//! The task dependency graph.
//!
//! Built by the DAG builders in `ca-core`/`ca-baselines`, executed either by
//! the threaded worker pool ([`crate::run_graph`]) or by the deterministic
//! multicore simulator ([`crate::simulate`]).

use crate::task::{TaskId, TaskMeta};

/// A directed acyclic graph of tasks with payloads of type `T`.
///
/// Edges mean "must complete before". The graph is append-only; dependency
/// edges may only point from an existing task to an existing task, which
/// makes accidental cycles impossible to express as long as builders add
/// tasks in a valid topological order (they do — factorizations proceed
/// panel by panel). [`TaskGraph::validate`] re-checks this invariant.
pub struct TaskGraph<T> {
    pub(crate) metas: Vec<TaskMeta>,
    pub(crate) payloads: Vec<T>,
    pub(crate) succs: Vec<Vec<TaskId>>,
    pub(crate) npreds: Vec<usize>,
}

impl<T> Default for TaskGraph<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TaskGraph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        Self { metas: Vec::new(), payloads: Vec::new(), succs: Vec::new(), npreds: Vec::new() }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// `true` if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Adds a task; returns its id.
    pub fn add_task(&mut self, meta: TaskMeta, payload: T) -> TaskId {
        let id = self.metas.len();
        self.metas.push(meta);
        self.payloads.push(payload);
        self.succs.push(Vec::new());
        self.npreds.push(0);
        id
    }

    /// Adds the dependency edge `before → after`.
    ///
    /// # Panics
    /// If either id is out of range, if `before == after`, or if the edge
    /// points forward in insertion order reversed (`before > after`), which
    /// would allow cycles.
    pub fn add_dep(&mut self, before: TaskId, after: TaskId) {
        assert!(before < self.metas.len() && after < self.metas.len(), "dependency on unknown task");
        assert!(before != after, "self-dependency");
        assert!(before < after, "edges must respect insertion order (got {before} -> {after})");
        if self.succs[before].contains(&after) {
            return; // duplicate edges carry no information
        }
        self.succs[before].push(after);
        self.npreds[after] += 1;
    }

    /// Adds `before → after` for every `before` in the iterator.
    pub fn add_deps(&mut self, befores: impl IntoIterator<Item = TaskId>, after: TaskId) {
        for b in befores {
            self.add_dep(b, after);
        }
    }

    /// Removes the edge `before → after` if present; returns whether it
    /// existed. Used by soundness tests to seed ordering violations for
    /// [`crate::verify_graph`] to catch.
    pub fn remove_dep(&mut self, before: TaskId, after: TaskId) -> bool {
        let Some(pos) = self
            .succs
            .get(before)
            .and_then(|s| s.iter().position(|&x| x == after))
        else {
            return false;
        };
        self.succs[before].remove(pos);
        self.npreds[after] -= 1;
        true
    }

    /// Metadata of task `id`.
    pub fn meta(&self, id: TaskId) -> &TaskMeta {
        &self.metas[id]
    }

    /// Successors of task `id`.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    /// Number of unmet predecessors of task `id` (as built).
    pub fn pred_count(&self, id: TaskId) -> usize {
        self.npreds[id]
    }

    /// Ids of tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.len()).filter(|&i| self.npreds[i] == 0).collect()
    }

    /// Total flops across all tasks.
    pub fn total_flops(&self) -> f64 {
        self.metas.iter().map(|m| m.flops).sum()
    }

    /// Length of the critical path in flops (longest path through the DAG).
    pub fn critical_path_flops(&self) -> f64 {
        // Tasks are in topological order by construction.
        let mut dist = vec![0.0f64; self.len()];
        let mut best: f64 = 0.0;
        for id in 0..self.len() {
            let d = dist[id] + self.metas[id].flops;
            best = best.max(d);
            for &s in &self.succs[id] {
                if dist[s] < d {
                    dist[s] = d;
                }
            }
        }
        best
    }

    /// Checks structural invariants: every edge respects topological
    /// (insertion) order and predecessor counts match edges. Returns the
    /// number of edges.
    pub fn validate(&self) -> usize {
        let mut counted = vec![0usize; self.len()];
        let mut edges = 0;
        for (id, succs) in self.succs.iter().enumerate() {
            for &s in succs {
                assert!(s > id, "edge {id} -> {s} violates topological order");
                counted[s] += 1;
                edges += 1;
            }
        }
        assert_eq!(counted, self.npreds, "predecessor counts inconsistent");
        edges
    }

    /// Maps payloads through `f`, preserving topology, metadata and ids.
    ///
    /// This is how one DAG serves both executors: build with descriptive
    /// payloads, `map` them into closures for [`crate::run_graph`], or pass
    /// the original graph to [`crate::simulate`] (which ignores payloads).
    pub fn map<U>(self, mut f: impl FnMut(TaskId, T) -> U) -> TaskGraph<U> {
        let payloads = self
            .payloads
            .into_iter()
            .enumerate()
            .map(|(id, p)| f(id, p))
            .collect();
        TaskGraph { metas: self.metas, payloads, succs: self.succs, npreds: self.npreds }
    }

    /// Borrowing variant of [`TaskGraph::map`]: builds a parallel graph whose
    /// payloads are produced from references to this graph's payloads.
    pub fn map_ref<U>(&self, mut f: impl FnMut(TaskId, &T) -> U) -> TaskGraph<U> {
        TaskGraph {
            metas: self.metas.clone(),
            payloads: self.payloads.iter().enumerate().map(|(id, p)| f(id, p)).collect(),
            succs: self.succs.clone(),
            npreds: self.npreds.clone(),
        }
    }

    /// Emits the graph in Graphviz DOT format (for Figure-1-style pictures).
    pub fn to_dot(&self) -> String {
        use core::fmt::Write;
        let mut s = String::from("digraph tasks {\n  rankdir=TB;\n");
        for (id, m) in self.metas.iter().enumerate() {
            let color = match m.label.kind.code() {
                'P' => "indianred",
                'L' => "gold",
                'U' => "skyblue",
                'S' => "palegreen",
                _ => "gray",
            };
            let _ = writeln!(
                s,
                "  t{id} [label=\"{}\", style=filled, fillcolor={color}];",
                m.label
            );
        }
        for (id, succs) in self.succs.iter().enumerate() {
            for &sc in succs {
                let _ = writeln!(s, "  t{id} -> t{sc};");
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel};

    fn meta(k: TaskKind, flops: f64) -> TaskMeta {
        TaskMeta::new(TaskLabel::new(k, 0, 0, 0), flops)
    }

    #[test]
    fn build_and_validate_diamond() {
        let mut g = TaskGraph::new();
        let a = g.add_task(meta(TaskKind::Panel, 1.0), ());
        let b = g.add_task(meta(TaskKind::Update, 2.0), ());
        let c = g.add_task(meta(TaskKind::Update, 3.0), ());
        let d = g.add_task(meta(TaskKind::Panel, 1.0), ());
        g.add_dep(a, b);
        g.add_dep(a, c);
        g.add_dep(b, d);
        g.add_dep(c, d);
        assert_eq!(g.validate(), 4);
        assert_eq!(g.roots(), vec![a]);
        assert_eq!(g.total_flops(), 7.0);
        // Critical path: a -> c -> d = 1 + 3 + 1.
        assert_eq!(g.critical_path_flops(), 5.0);
    }

    #[test]
    fn independent_tasks_are_all_roots() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        for _ in 0..5 {
            g.add_task(meta(TaskKind::Other, 1.0), ());
        }
        assert_eq!(g.roots().len(), 5);
        assert_eq!(g.critical_path_flops(), 1.0);
    }

    #[test]
    #[should_panic(expected = "insertion order")]
    fn backward_edge_rejected() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = g.add_task(meta(TaskKind::Other, 1.0), ());
        let b = g.add_task(meta(TaskKind::Other, 1.0), ());
        g.add_dep(b, a);
    }

    #[test]
    #[should_panic(expected = "self-dependency")]
    fn self_edge_rejected() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = g.add_task(meta(TaskKind::Other, 1.0), ());
        g.add_dep(a, a);
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = g.add_task(meta(TaskKind::Panel, 1.0), ());
        let b = g.add_task(meta(TaskKind::Update, 1.0), ());
        g.add_dep(a, b);
        let dot = g.to_dot();
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("indianred"));
        assert!(dot.contains("palegreen"));
    }
}
