//! Block-level dependency inference for building factorization task graphs.
//!
//! The builders express each task's effect as reads/writes of `b × b` blocks
//! of the matrix; [`BlockTracker`] turns those into dependency edges
//! (read-after-write, write-after-write, and write-after-read), which is how
//! the paper's "task dependency graph constructed on the fly" is realized.

use crate::footprint::AccessMap;
use crate::graph::TaskGraph;
use crate::task::TaskId;
use std::collections::HashSet;

/// Per-block last-writer / readers-since-write bookkeeping over an `mb × nb`
/// block grid.
///
/// Besides inferring edges, the tracker retains every declared region in an
/// [`AccessMap`] so the graph can later be verified ([`crate::verify_graph`])
/// or executed in checked mode.
pub struct BlockTracker {
    mb: usize,
    nb: usize,
    last_writer: Vec<Option<TaskId>>,
    readers: Vec<Vec<TaskId>>,
    access: AccessMap,
}

impl BlockTracker {
    /// A tracker over an `mb × nb` block grid with no accesses recorded yet.
    pub fn new(mb: usize, nb: usize) -> Self {
        Self {
            mb,
            nb,
            last_writer: vec![None; mb * nb],
            readers: vec![Vec::new(); mb * nb],
            access: AccessMap::new(mb, nb),
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        // Hard check even in release builds: an out-of-grid declaration means
        // the builder's footprint arithmetic is wrong, and silently indexing
        // a neighbouring block would corrupt the dependency structure.
        assert!(i < self.mb && j < self.nb, "block ({i},{j}) outside {}x{} grid", self.mb, self.nb);
        i + j * self.mb
    }

    /// Declares that `task` reads blocks `(i, j)` for `i` in `rows`, `j` in
    /// `cols`, adding read-after-write edges.
    pub fn read<T>(
        &mut self,
        g: &mut TaskGraph<T>,
        task: TaskId,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
    ) {
        self.access.record_read(task, rows.clone(), cols.clone());
        let mut deps = HashSet::new();
        for j in cols {
            for i in rows.clone() {
                let x = self.idx(i, j);
                if let Some(w) = self.last_writer[x] {
                    if w != task {
                        deps.insert(w);
                    }
                }
                // Dedup: a task reading overlapping ranges must appear once,
                // or later writers would get duplicate WAR scans and the
                // reader list would grow without bound.
                if self.readers[x].last() != Some(&task) && !self.readers[x].contains(&task) {
                    self.readers[x].push(task);
                }
            }
        }
        add_sorted_deps(g, deps, task);
    }

    /// Declares that `task` writes blocks `(i, j)` for `i` in `rows`, `j` in
    /// `cols`, adding WAW and WAR edges and resetting reader sets.
    pub fn write<T>(
        &mut self,
        g: &mut TaskGraph<T>,
        task: TaskId,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
    ) {
        self.access.record_write(task, rows.clone(), cols.clone());
        let mut deps = HashSet::new();
        for j in cols {
            for i in rows.clone() {
                let x = self.idx(i, j);
                if let Some(w) = self.last_writer[x] {
                    if w != task {
                        deps.insert(w);
                    }
                }
                for &r in &self.readers[x] {
                    if r != task {
                        deps.insert(r);
                    }
                }
                self.readers[x].clear();
                self.last_writer[x] = Some(task);
            }
        }
        add_sorted_deps(g, deps, task);
    }

    /// The declared footprints recorded so far.
    pub fn access_map(&self) -> &AccessMap {
        &self.access
    }

    /// Consumes the tracker, yielding the declared footprints — the form the
    /// DAG builders hand to [`crate::verify_graph`] and the checked
    /// executors.
    pub fn into_access_map(self) -> AccessMap {
        self.access
    }
}

fn add_sorted_deps<T>(g: &mut TaskGraph<T>, deps: HashSet<TaskId>, task: TaskId) {
    let mut v: Vec<TaskId> = deps.into_iter().collect();
    v.sort_unstable();
    for d in v {
        g.add_dep(d, task);
    }
}

/// Block-row range (inclusive start, exclusive end) covering rows
/// `r.start..r.end` on a grid of `b`-row blocks.
pub fn row_blocks(r: core::ops::Range<usize>, b: usize) -> core::ops::Range<usize> {
    if r.is_empty() {
        return 0..0;
    }
    (r.start / b)..r.end.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel, TaskMeta};

    fn mk(g: &mut TaskGraph<()>) -> TaskId {
        g.add_task(TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0), ())
    }

    #[test]
    fn raw_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..2, 0..2);
        let r = mk(&mut g);
        t.read(&mut g, r, 1..2, 1..2);
        assert_eq!(g.successors(w), &[r]);
    }

    #[test]
    fn war_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..1, 0..1);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..1);
        assert_eq!(g.successors(r), &[w]);
    }

    #[test]
    fn waw_dependency_and_reader_reset() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let w1 = mk(&mut g);
        t.write(&mut g, w1, 0..1, 0..1);
        let w2 = mk(&mut g);
        t.write(&mut g, w2, 0..1, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..1, 0..1);
        assert_eq!(g.successors(w1), &[w2]);
        assert_eq!(g.successors(w2), &[r]);
    }

    #[test]
    fn disjoint_blocks_no_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let a = mk(&mut g);
        t.write(&mut g, a, 0..1, 0..1);
        let b = mk(&mut g);
        t.write(&mut g, b, 1..2, 1..2);
        assert!(g.successors(a).is_empty());
        assert_eq!(g.pred_count(b), 0);
    }

    #[test]
    fn duplicate_deps_are_merged() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 1);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..4, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..4, 0..1);
        // One edge, not four.
        assert_eq!(g.successors(w).len(), 1);
        assert_eq!(g.pred_count(r), 1);
    }

    #[test]
    fn overlapping_reads_do_not_duplicate_reader_ids() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let r = mk(&mut g);
        // Three overlapping read declarations all covering block (0, 0).
        t.read(&mut g, r, 0..2, 0..2);
        t.read(&mut g, r, 0..1, 0..1);
        t.read(&mut g, r, 0..2, 0..1);
        assert_eq!(t.readers[0], vec![r], "reader list must stay deduplicated");
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..1);
        assert_eq!(g.pred_count(w), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_declaration_panics_in_release_too() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let a = mk(&mut g);
        t.write(&mut g, a, 0..3, 0..1);
    }

    #[test]
    fn tracker_retains_declared_footprints() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..2, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 1..2, 0..1);
        let access = t.into_access_map();
        assert_eq!(access.grid(), (4, 4));
        assert_eq!(access.writes(w).len(), 1);
        assert_eq!(access.writes(w)[0].rows, 0..2);
        assert_eq!(access.reads(r).len(), 1);
        assert!(access.writes(r).is_empty());
    }

    #[test]
    fn row_block_ranges() {
        assert_eq!(row_blocks(0..100, 100), 0..1);
        assert_eq!(row_blocks(0..101, 100), 0..2);
        assert_eq!(row_blocks(100..250, 100), 1..3);
        assert_eq!(row_blocks(150..250, 100), 1..3);
        assert_eq!(row_blocks(5..5, 100), 0..0);
    }
}
