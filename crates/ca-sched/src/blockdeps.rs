//! Block- and rect-level dependency inference for factorization task graphs.
//!
//! The builders express each task's effect as reads/writes of `b × b` blocks
//! of the matrix; [`BlockTracker`] turns those into dependency edges
//! (read-after-write, write-after-write, and write-after-read), which is how
//! the paper's "task dependency graph constructed on the fly" is realized.
//!
//! Two tracking modes:
//!
//! * **Block mode** ([`BlockTracker::new`]) — per-block last-writer /
//!   readers-since-write bookkeeping. A task's footprint is a set of whole
//!   blocks.
//! * **Rect mode** ([`BlockTracker::with_geometry`]) — tasks may additionally
//!   declare *element-rectangle* footprints ([`BlockTracker::read_rect`] /
//!   [`BlockTracker::write_rect`]), so sub-tile aliasing (e.g. the L and U
//!   triangles of a factored diagonal tile) produces edges only where rects
//!   actually overlap. Internally every access becomes per-block-cell
//!   clipped rect entries; the block grid is kept purely as a spatial index.
//!
//! Both modes infer a *minimal* edge set: a write does not add a WAW edge to
//! the previous writer where intervening reads already cover the overlap,
//! because each covering reader carries a read-after-write edge from that
//! writer and receives a write-after-read edge here — the WAW ordering is
//! implied transitively. The static verifier's edge-necessity lint
//! ([`crate::verify_graph_with`]) checks exactly this property.

use crate::footprint::AccessMap;
use crate::graph::TaskGraph;
use crate::task::TaskId;
use ca_matrix::shadow::ElemRect;
use ca_matrix::RegionSet;
use std::collections::HashSet;

/// One live access in a rect-mode cell: `task` read or wrote `rect` (clipped
/// to the cell) and no later write has fully superseded it.
#[derive(Clone, Debug)]
struct Entry {
    task: TaskId,
    write: bool,
    rect: ElemRect,
}

/// Per-block last-writer / readers-since-write bookkeeping over an `mb × nb`
/// block grid, or per-cell rect-entry bookkeeping in rect mode.
///
/// Besides inferring edges, the tracker retains every declared region in an
/// [`AccessMap`] so the graph can later be verified ([`crate::verify_graph`])
/// or executed in checked mode.
pub struct BlockTracker {
    mb: usize,
    nb: usize,
    geometry: Option<(usize, usize, usize)>,
    last_writer: Vec<Option<TaskId>>,
    readers: Vec<Vec<TaskId>>,
    entries: Vec<Vec<Entry>>,
    access: AccessMap,
}

impl BlockTracker {
    /// A block-mode tracker over an `mb × nb` block grid with no accesses
    /// recorded yet.
    pub fn new(mb: usize, nb: usize) -> Self {
        Self {
            mb,
            nb,
            geometry: None,
            last_writer: vec![None; mb * nb],
            readers: vec![Vec::new(); mb * nb],
            entries: Vec::new(),
            access: AccessMap::new(mb, nb),
        }
    }

    /// A rect-mode tracker for an `m × n` matrix tiled into `b`-sized
    /// blocks. Block-level declarations still work (they become one clipped
    /// rect per declaration); `read_rect`/`write_rect` become available.
    pub fn with_geometry(b: usize, m: usize, n: usize) -> Self {
        let mb = m.div_ceil(b);
        let nb = n.div_ceil(b);
        let mut t = Self::new(mb, nb);
        t.geometry = Some((b, m, n));
        t.entries = vec![Vec::new(); mb * nb];
        t.access.set_geometry(b, m, n);
        t
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        // Hard check even in release builds: an out-of-grid declaration means
        // the builder's footprint arithmetic is wrong, and silently indexing
        // a neighbouring block would corrupt the dependency structure.
        assert!(i < self.mb && j < self.nb, "block ({i},{j}) outside {}x{} grid", self.mb, self.nb);
        i + j * self.mb
    }

    /// Declares that `task` reads blocks `(i, j)` for `i` in `rows`, `j` in
    /// `cols`, adding read-after-write edges.
    pub fn read<T>(
        &mut self,
        g: &mut TaskGraph<T>,
        task: TaskId,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
    ) {
        self.access.record_read(task, rows.clone(), cols.clone());
        if let Some((b, m, n)) = self.geometry {
            let rect = ElemRect::new(
                (rows.start * b).min(m)..(rows.end * b).min(m),
                (cols.start * b).min(n)..(cols.end * b).min(n),
            );
            // Bounds were checked via the grid clamp; still verify the block
            // coordinates are inside the grid like block mode does.
            if !(rows.is_empty() || cols.is_empty()) {
                self.idx(rows.end - 1, cols.end - 1);
            }
            self.touch_rect(g, task, false, rect);
            return;
        }
        let mut deps = HashSet::new();
        for j in cols {
            for i in rows.clone() {
                let x = self.idx(i, j);
                if let Some(w) = self.last_writer[x] {
                    if w != task {
                        deps.insert(w);
                    }
                }
                // Dedup: a task reading overlapping ranges must appear once,
                // or later writers would get duplicate WAR scans and the
                // reader list would grow without bound.
                if self.readers[x].last() != Some(&task) && !self.readers[x].contains(&task) {
                    self.readers[x].push(task);
                }
            }
        }
        add_sorted_deps(g, deps, task);
    }

    /// Declares that `task` writes blocks `(i, j)` for `i` in `rows`, `j` in
    /// `cols`, adding WAW and WAR edges and resetting reader sets.
    pub fn write<T>(
        &mut self,
        g: &mut TaskGraph<T>,
        task: TaskId,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
    ) {
        self.access.record_write(task, rows.clone(), cols.clone());
        if let Some((b, m, n)) = self.geometry {
            let rect = ElemRect::new(
                (rows.start * b).min(m)..(rows.end * b).min(m),
                (cols.start * b).min(n)..(cols.end * b).min(n),
            );
            if !(rows.is_empty() || cols.is_empty()) {
                self.idx(rows.end - 1, cols.end - 1);
            }
            self.touch_rect(g, task, true, rect);
            return;
        }
        let mut deps = HashSet::new();
        for j in cols {
            for i in rows.clone() {
                let x = self.idx(i, j);
                if let Some(w) = self.last_writer[x] {
                    // Skip the WAW edge when readers intervened: every
                    // reader already depends on the writer (RAW) and this
                    // task gets a WAR edge to each reader below, so the
                    // ordering w → task is implied transitively. (A reader
                    // list containing only `task` itself means `task` got
                    // the RAW edge at its own read.)
                    if w != task && self.readers[x].is_empty() {
                        deps.insert(w);
                    }
                }
                for &r in &self.readers[x] {
                    if r != task {
                        deps.insert(r);
                    }
                }
                self.readers[x].clear();
                self.last_writer[x] = Some(task);
            }
        }
        add_sorted_deps(g, deps, task);
    }

    /// Declares that `task` reads the element rectangle `rect` (rect mode
    /// only), adding read-after-write edges against overlapping live writes.
    pub fn read_rect<T>(&mut self, g: &mut TaskGraph<T>, task: TaskId, rect: ElemRect) {
        assert!(self.geometry.is_some(), "read_rect needs a rect-mode tracker");
        self.access.record_read_rect(task, rect);
        self.touch_rect(g, task, false, rect);
    }

    /// Declares that `task` writes the element rectangle `rect` (rect mode
    /// only), adding WAW/WAR edges against overlapping live entries.
    pub fn write_rect<T>(&mut self, g: &mut TaskGraph<T>, task: TaskId, rect: ElemRect) {
        assert!(self.geometry.is_some(), "write_rect needs a rect-mode tracker");
        self.access.record_write_rect(task, rect);
        self.touch_rect(g, task, true, rect);
    }

    /// Core of rect mode: clips `rect` to each overlapped grid cell and
    /// updates that cell's live-entry list, collecting dependency edges.
    fn touch_rect<T>(&mut self, g: &mut TaskGraph<T>, task: TaskId, write: bool, rect: ElemRect) {
        let (b, m, n) = self.geometry.expect("rect mode");
        if rect.is_empty() {
            return;
        }
        assert!(
            rect.row1 <= m && rect.col1 <= n,
            "rect {rect} outside {m}×{n} matrix"
        );
        let mut deps: HashSet<TaskId> = HashSet::new();
        for bj in rect.col0 / b..rect.col1.div_ceil(b) {
            for bi in rect.row0 / b..rect.row1.div_ceil(b) {
                let cell = ElemRect::new(bi * b..(bi + 1) * b, bj * b..(bj + 1) * b);
                let Some(c) = rect.intersection(&cell) else { continue };
                let x = self.idx(bi, bj);
                let entries = &mut self.entries[x];
                if write {
                    for e in entries.iter() {
                        if e.task == task || !e.rect.overlaps(&c) {
                            continue;
                        }
                        if e.write {
                            // WAW — skippable when intervening reads fully
                            // cover the overlap: each covering reader has a
                            // RAW edge from `e.task` (reads only enter the
                            // list after the writes they saw) and receives a
                            // WAR edge from this write below.
                            let o = e.rect.intersection(&c).expect("overlapping");
                            let mut cover = RegionSet::from_rect(o);
                            for r in entries.iter().filter(|r| !r.write) {
                                cover.subtract_rect(&r.rect);
                                if cover.is_empty() {
                                    break;
                                }
                            }
                            if !cover.is_empty() {
                                deps.insert(e.task);
                            }
                        } else {
                            deps.insert(e.task); // WAR
                        }
                    }
                    // The write supersedes everything it covers.
                    let mut kept = Vec::with_capacity(entries.len() + 1);
                    for e in entries.drain(..) {
                        if !e.rect.overlaps(&c) {
                            kept.push(e);
                            continue;
                        }
                        let mut rest = RegionSet::from_rect(e.rect);
                        rest.subtract_rect(&c);
                        kept.extend(rest.rects().iter().map(|&r| Entry {
                            task: e.task,
                            write: e.write,
                            rect: r,
                        }));
                    }
                    kept.push(Entry { task, write: true, rect: c });
                    *entries = kept;
                } else {
                    for e in entries.iter() {
                        if e.write && e.task != task && e.rect.overlaps(&c) {
                            deps.insert(e.task); // RAW
                        }
                    }
                    // Dedup repeated reads of the same region by one task so
                    // later writers scan each reader once.
                    if !entries.iter().any(|e| {
                        !e.write && e.task == task && e.rect.contains(&c)
                    }) {
                        entries.push(Entry { task, write: false, rect: c });
                    }
                }
            }
        }
        add_sorted_deps(g, deps, task);
    }

    /// The declared footprints recorded so far.
    pub fn access_map(&self) -> &AccessMap {
        &self.access
    }

    /// Consumes the tracker, yielding the declared footprints — the form the
    /// DAG builders hand to [`crate::verify_graph`] and the checked
    /// executors.
    pub fn into_access_map(self) -> AccessMap {
        self.access
    }
}

fn add_sorted_deps<T>(g: &mut TaskGraph<T>, deps: HashSet<TaskId>, task: TaskId) {
    let mut v: Vec<TaskId> = deps.into_iter().collect();
    v.sort_unstable();
    for d in v {
        g.add_dep(d, task);
    }
}

/// Block-row range (inclusive start, exclusive end) covering rows
/// `r.start..r.end` on a grid of `b`-row blocks.
pub fn row_blocks(r: core::ops::Range<usize>, b: usize) -> core::ops::Range<usize> {
    if r.is_empty() {
        return 0..0;
    }
    (r.start / b)..r.end.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel, TaskMeta};

    fn mk(g: &mut TaskGraph<()>) -> TaskId {
        g.add_task(TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0), ())
    }

    #[test]
    fn raw_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..2, 0..2);
        let r = mk(&mut g);
        t.read(&mut g, r, 1..2, 1..2);
        assert_eq!(g.successors(w), &[r]);
    }

    #[test]
    fn war_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..1, 0..1);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..1);
        assert_eq!(g.successors(r), &[w]);
    }

    #[test]
    fn waw_dependency_and_reader_reset() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let w1 = mk(&mut g);
        t.write(&mut g, w1, 0..1, 0..1);
        let w2 = mk(&mut g);
        t.write(&mut g, w2, 0..1, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..1, 0..1);
        assert_eq!(g.successors(w1), &[w2]);
        assert_eq!(g.successors(w2), &[r]);
    }

    #[test]
    fn waw_skipped_when_readers_intervene() {
        // w1 → r → w2: the direct w1 → w2 edge is transitively implied, so
        // the tracker must not add it.
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let w1 = mk(&mut g);
        t.write(&mut g, w1, 0..1, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..1, 0..1);
        let w2 = mk(&mut g);
        t.write(&mut g, w2, 0..1, 0..1);
        assert_eq!(g.successors(w1), &[r], "no direct WAW past the reader");
        assert_eq!(g.successors(r), &[w2]);
    }

    #[test]
    fn waw_skipped_when_writer_read_its_own_target() {
        // w writes, t reads then writes: t got the RAW edge at its read, so
        // the write adds nothing new.
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..1);
        let u = mk(&mut g);
        t.read(&mut g, u, 0..1, 0..1);
        t.write(&mut g, u, 0..1, 0..1);
        assert_eq!(g.successors(w), &[u]);
        assert_eq!(g.pred_count(u), 1, "exactly one edge, not a duplicate");
    }

    #[test]
    fn disjoint_blocks_no_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let a = mk(&mut g);
        t.write(&mut g, a, 0..1, 0..1);
        let b = mk(&mut g);
        t.write(&mut g, b, 1..2, 1..2);
        assert!(g.successors(a).is_empty());
        assert_eq!(g.pred_count(b), 0);
    }

    #[test]
    fn duplicate_deps_are_merged() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 1);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..4, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..4, 0..1);
        // One edge, not four.
        assert_eq!(g.successors(w).len(), 1);
        assert_eq!(g.pred_count(r), 1);
    }

    #[test]
    fn overlapping_reads_do_not_duplicate_reader_ids() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let r = mk(&mut g);
        // Three overlapping read declarations all covering block (0, 0).
        t.read(&mut g, r, 0..2, 0..2);
        t.read(&mut g, r, 0..1, 0..1);
        t.read(&mut g, r, 0..2, 0..1);
        assert_eq!(t.readers[0], vec![r], "reader list must stay deduplicated");
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..1);
        assert_eq!(g.pred_count(w), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_declaration_panics_in_release_too() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let a = mk(&mut g);
        t.write(&mut g, a, 0..3, 0..1);
    }

    #[test]
    fn tracker_retains_declared_footprints() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..2, 0..1);
        let r = mk(&mut g);
        t.read(&mut g, r, 1..2, 0..1);
        let access = t.into_access_map();
        assert_eq!(access.grid(), (4, 4));
        assert_eq!(access.writes(w).len(), 1);
        assert_eq!(access.writes(w)[0].rows, 0..2);
        assert_eq!(access.reads(r).len(), 1);
        assert!(access.writes(r).is_empty());
    }

    #[test]
    fn row_block_ranges() {
        assert_eq!(row_blocks(0..100, 100), 0..1);
        assert_eq!(row_blocks(0..101, 100), 0..2);
        assert_eq!(row_blocks(100..250, 100), 1..3);
        assert_eq!(row_blocks(150..250, 100), 1..3);
        assert_eq!(row_blocks(5..5, 100), 0..0);
    }

    // --- rect mode ---

    fn rect(rows: core::ops::Range<usize>, cols: core::ops::Range<usize>) -> ElemRect {
        ElemRect::new(rows, cols)
    }

    #[test]
    fn rect_mode_block_declarations_match_block_mode() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 8, 8);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..2);
        let r = mk(&mut g);
        t.read(&mut g, r, 0..1, 1..2);
        let u = mk(&mut g);
        t.write(&mut g, u, 1..2, 0..1);
        assert_eq!(g.successors(w), &[r]);
        assert!(g.successors(u).is_empty());
        assert_eq!(g.pred_count(u), 0);
        let access = t.into_access_map();
        assert_eq!(access.geometry(), Some((4, 8, 8)));
        assert_eq!(access.writes(w).len(), 1, "block regions still recorded");
    }

    #[test]
    fn disjoint_triangles_of_one_tile_do_not_conflict() {
        // One 4×4 tile; task a writes the upper-incl-diagonal triangle
        // (per-column rects), task b reads the strict lower triangle.
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 4, 4);
        let w = mk(&mut g);
        t.write(&mut g, w, 0..1, 0..1); // factor writes the whole tile
        let a = mk(&mut g);
        for c in 0..4 {
            t.write_rect(&mut g, a, rect(0..c + 1, c..c + 1));
        }
        let b = mk(&mut g);
        for c in 0..3 {
            t.read_rect(&mut g, b, rect(c + 1..4, c..c + 1));
        }
        assert_eq!(g.successors(w), &[a, b], "both depend on the factor");
        assert!(
            !g.successors(a).contains(&b) && !g.successors(b).contains(&a),
            "disjoint triangles must not be ordered"
        );
    }

    #[test]
    fn rect_overlap_produces_dependency() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 8, 8);
        let w = mk(&mut g);
        t.write_rect(&mut g, w, rect(0..3, 0..3));
        let r = mk(&mut g);
        t.read_rect(&mut g, r, rect(2..5, 2..5)); // overlaps at (2,2)
        let r2 = mk(&mut g);
        t.read_rect(&mut g, r2, rect(3..6, 3..6)); // disjoint from w
        assert_eq!(g.successors(w), &[r]);
        assert_eq!(g.pred_count(r2), 0);
    }

    #[test]
    fn rect_waw_skipped_when_reads_cover_overlap() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 4, 4);
        let w1 = mk(&mut g);
        t.write_rect(&mut g, w1, rect(0..2, 0..2));
        let r = mk(&mut g);
        t.read_rect(&mut g, r, rect(0..2, 0..2));
        let w2 = mk(&mut g);
        t.write_rect(&mut g, w2, rect(0..2, 0..2));
        assert_eq!(g.successors(w1), &[r], "WAW implied through the reader");
        assert_eq!(g.successors(r), &[w2]);
    }

    #[test]
    fn rect_waw_kept_when_reads_cover_only_part() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 4, 4);
        let w1 = mk(&mut g);
        t.write_rect(&mut g, w1, rect(0..2, 0..2));
        let r = mk(&mut g);
        t.read_rect(&mut g, r, rect(0..1, 0..2)); // covers only the top row
        let w2 = mk(&mut g);
        t.write_rect(&mut g, w2, rect(0..2, 0..2));
        assert!(g.successors(w1).contains(&w2), "uncovered part needs the WAW edge");
        assert!(g.successors(r).contains(&w2));
    }

    #[test]
    fn rect_spanning_multiple_cells_collects_all_deps() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(2, 6, 6);
        let a = mk(&mut g);
        t.write_rect(&mut g, a, rect(0..2, 0..2));
        let b = mk(&mut g);
        t.write_rect(&mut g, b, rect(4..6, 4..6));
        let r = mk(&mut g);
        t.read_rect(&mut g, r, rect(1..5, 1..5)); // touches both writes
        assert_eq!(g.successors(a), &[r]);
        assert_eq!(g.successors(b), &[r]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_matrix_rect_panics() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 8, 8);
        let a = mk(&mut g);
        t.write_rect(&mut g, a, rect(0..9, 0..1));
    }

    #[test]
    fn rect_mode_retains_elem_rects_in_access_map() {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 8, 8);
        let a = mk(&mut g);
        t.write_rect(&mut g, a, rect(0..3, 0..1));
        t.read_rect(&mut g, a, rect(4..8, 4..8));
        let access = t.into_access_map();
        assert_eq!(access.elem_writes(a), &[rect(0..3, 0..1)]);
        assert_eq!(access.elem_reads(a), &[rect(4..8, 4..8)]);
        assert_eq!(access.resolved_writes(a), vec![rect(0..3, 0..1)]);
    }
}
