//! Always-on scheduler telemetry: global counters and per-worker flight
//! recorders.
//!
//! Two complementary mechanisms live here:
//!
//! 1. **Global scheduler counters** ([`sched_counters`]) — one process-wide
//!    set of `ca_telemetry` atomic counters incremented by every executor
//!    (the one-shot pools, the work-stealing pool, [`MultiFrontier`]) and by
//!    the recovery layer. An increment is a single `Relaxed` `fetch_add`;
//!    the counters are always on and never reset, so exposition readers
//!    should report deltas between snapshots. Because the cells are shared
//!    by every pool in the process, tests assert monotonicity rather than
//!    exact values.
//!
//! 2. **Flight recorder** ([`FlightRecorder`]) — per-worker bounded rings of
//!    recent task lifecycle / retry / shed events. A recorder is attached to
//!    a `MultiFrontier` (see `set_flight_recorder`); workers then publish
//!    their lane through a thread-local so that instrumentation deep in the
//!    recovery layer ([`record_event`]) lands events on the right lane
//!    without threading a handle through every call. When a job fails, a
//!    probe detects corruption, a deadline is missed, or shed fires, the
//!    serve tier dumps [`FlightRecorder::chrome_trace_fragment`] — a
//!    self-contained chrome-trace JSON of the last moments before the event.
//!
//! [`MultiFrontier`]: crate::MultiFrontier

use std::cell::Cell;
use std::sync::{OnceLock, Weak};
use std::time::Instant;

use ca_telemetry::{Counter, Ring};

use crate::task::TaskLabel;

// ---------------------------------------------------------------------------
// Global scheduler counters
// ---------------------------------------------------------------------------

/// Process-wide scheduler counters, updated by every executor.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Tasks handed to a worker (all executors).
    pub tasks_dispatched: Counter,
    /// Tasks that ran to completion.
    pub tasks_completed: Counter,
    /// Tasks whose body returned an error or panicked.
    pub tasks_failed: Counter,
    /// Steal attempts made by the work-stealing executor.
    pub steal_attempts: Counter,
    /// Steal attempts that obtained a task.
    pub steal_hits: Counter,
    /// Jobs submitted to a `MultiFrontier`.
    pub jobs_submitted: Counter,
    /// Jobs that completed successfully.
    pub jobs_completed: Counter,
    /// Jobs that failed.
    pub jobs_failed: Counter,
    /// Jobs cancelled for any reason (user, deadline, shed, shutdown).
    pub jobs_cancelled: Counter,
    /// Jobs cancelled specifically by load shedding.
    pub jobs_shed: Counter,
    /// Jobs cancelled specifically by deadline expiry.
    pub jobs_deadline_missed: Counter,
    /// Task-level recovery replays (PR-6 `run_recovering`).
    pub task_retries: Counter,
    /// Write-set restores performed before a replay.
    pub task_restores: Counter,
    /// Faults injected by an active chaos plan.
    pub chaos_injections: Counter,
    /// Integrity probes executed (ca-core `verify_integrity`).
    pub probes_run: Counter,
    /// Integrity probes that detected corruption.
    pub probe_failures: Counter,
    /// Factorization task graphs built (CALU + CAQR).
    pub factor_graphs_built: Counter,
}

/// Serializable point-in-time copy of [`SchedCounters`].
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)] // field-per-counter mirror of `SchedCounters`
pub struct SchedCountersSnapshot {
    pub tasks_dispatched: u64,
    pub tasks_completed: u64,
    pub tasks_failed: u64,
    pub steal_attempts: u64,
    pub steal_hits: u64,
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    pub jobs_cancelled: u64,
    pub jobs_shed: u64,
    pub jobs_deadline_missed: u64,
    pub task_retries: u64,
    pub task_restores: u64,
    pub chaos_injections: u64,
    pub probes_run: u64,
    pub probe_failures: u64,
    pub factor_graphs_built: u64,
}

impl SchedCounters {
    /// Reads every counter at once.
    pub fn snapshot(&self) -> SchedCountersSnapshot {
        SchedCountersSnapshot {
            tasks_dispatched: self.tasks_dispatched.get(),
            tasks_completed: self.tasks_completed.get(),
            tasks_failed: self.tasks_failed.get(),
            steal_attempts: self.steal_attempts.get(),
            steal_hits: self.steal_hits.get(),
            jobs_submitted: self.jobs_submitted.get(),
            jobs_completed: self.jobs_completed.get(),
            jobs_failed: self.jobs_failed.get(),
            jobs_cancelled: self.jobs_cancelled.get(),
            jobs_shed: self.jobs_shed.get(),
            jobs_deadline_missed: self.jobs_deadline_missed.get(),
            task_retries: self.task_retries.get(),
            task_restores: self.task_restores.get(),
            chaos_injections: self.chaos_injections.get(),
            probes_run: self.probes_run.get(),
            probe_failures: self.probe_failures.get(),
            factor_graphs_built: self.factor_graphs_built.get(),
        }
    }
}

impl SchedCountersSnapshot {
    /// `(name, value)` pairs for exposition, in declaration order.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("tasks_dispatched", self.tasks_dispatched),
            ("tasks_completed", self.tasks_completed),
            ("tasks_failed", self.tasks_failed),
            ("steal_attempts", self.steal_attempts),
            ("steal_hits", self.steal_hits),
            ("jobs_submitted", self.jobs_submitted),
            ("jobs_completed", self.jobs_completed),
            ("jobs_failed", self.jobs_failed),
            ("jobs_cancelled", self.jobs_cancelled),
            ("jobs_shed", self.jobs_shed),
            ("jobs_deadline_missed", self.jobs_deadline_missed),
            ("task_retries", self.task_retries),
            ("task_restores", self.task_restores),
            ("chaos_injections", self.chaos_injections),
            ("probes_run", self.probes_run),
            ("probe_failures", self.probe_failures),
            ("factor_graphs_built", self.factor_graphs_built),
        ]
    }
}

/// The process-wide scheduler counter set.
pub fn sched_counters() -> &'static SchedCounters {
    static COUNTERS: OnceLock<SchedCounters> = OnceLock::new();
    COUNTERS.get_or_init(SchedCounters::default)
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// What happened, compactly. Fieldless so the vendored serde derive applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FlightEventKind {
    /// A task was handed to this worker.
    Dispatch,
    /// The task body completed successfully.
    TaskOk,
    /// The task body returned an error or panicked.
    TaskFail,
    /// The recovery layer is replaying the task.
    Retry,
    /// The task's write-set was restored before a replay.
    Restore,
    /// An active chaos plan injected a fault into the task.
    Inject,
    /// A job was submitted.
    JobSubmit,
    /// A job completed successfully.
    JobDone,
    /// A job failed permanently.
    JobFail,
    /// A job was cancelled by load shedding.
    JobShed,
    /// A job was cancelled by deadline expiry.
    JobDeadline,
    /// A job was cancelled (user or shutdown).
    JobCancel,
    /// A post-completion integrity probe detected corruption.
    ProbeCorrupt,
}

impl FlightEventKind {
    fn name(self) -> &'static str {
        match self {
            FlightEventKind::Dispatch => "dispatch",
            FlightEventKind::TaskOk => "task_ok",
            FlightEventKind::TaskFail => "task_fail",
            FlightEventKind::Retry => "retry",
            FlightEventKind::Restore => "restore",
            FlightEventKind::Inject => "inject",
            FlightEventKind::JobSubmit => "job_submit",
            FlightEventKind::JobDone => "job_done",
            FlightEventKind::JobFail => "job_fail",
            FlightEventKind::JobShed => "job_shed",
            FlightEventKind::JobDeadline => "job_deadline",
            FlightEventKind::JobCancel => "job_cancel",
            FlightEventKind::ProbeCorrupt => "probe_corrupt",
        }
    }
}

/// One flight-recorder entry.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Seconds since the recorder was created.
    pub t: f64,
    /// Event class.
    pub kind: FlightEventKind,
    /// Owning job id (0 for one-shot executors).
    pub job: u64,
    /// Task identity, when the event concerns a task.
    pub label: Option<TaskLabel>,
}

/// Per-worker bounded rings of recent scheduler events.
///
/// Lane `nworkers` (one past the worker lanes) collects events from
/// non-worker threads — submissions, job completions delivered on the
/// caller's thread, and shed/deadline sweeps.
pub struct FlightRecorder {
    lanes: Vec<Ring<FlightEvent>>,
    epoch: Instant,
    depth: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FlightRecorder({} lanes x {})", self.lanes.len(), self.depth)
    }
}

thread_local! {
    static CURRENT_LANE: Cell<usize> = const { Cell::new(usize::MAX) };
    static CURRENT_RECORDER: std::cell::RefCell<Weak<FlightRecorder>> =
        const { std::cell::RefCell::new(Weak::new()) };
}

/// Publishes `recorder`/`lane` as this thread's flight-recorder context, so
/// that [`record_event`] calls made anywhere below (e.g. inside the retry
/// wrapper) land on this worker's ring. Called by `MultiFrontier` workers at
/// thread start; passing a dead `Weak` clears the context.
pub fn set_thread_recorder(recorder: Weak<FlightRecorder>, lane: usize) {
    CURRENT_LANE.with(|l| l.set(lane));
    CURRENT_RECORDER.with(|r| *r.borrow_mut() = recorder);
}

/// Records an event on the current thread's lane, if a recorder is attached.
///
/// The fast path for uninstrumented threads is a thread-local read and a
/// `Weak::upgrade` miss; no allocation, no lock.
pub fn record_event(kind: FlightEventKind, job: u64, label: Option<TaskLabel>) {
    CURRENT_RECORDER.with(|r| {
        if let Some(rec) = r.borrow().upgrade() {
            let lane = CURRENT_LANE.with(|l| l.get());
            rec.record(lane, kind, job, label);
        }
    });
}

impl FlightRecorder {
    /// Creates a recorder with `nworkers + 1` lanes, each retaining the most
    /// recent `depth` events.
    pub fn new(nworkers: usize, depth: usize) -> Self {
        let depth = depth.max(1);
        Self {
            lanes: (0..=nworkers).map(|_| Ring::new(depth)).collect(),
            epoch: Instant::now(),
            depth,
        }
    }

    /// Per-lane retained-event depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of worker lanes (excluding the external lane).
    pub fn nworkers(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Records an event on `lane` (out-of-range lanes fold into the external
    /// lane), stamped with the recorder's own clock.
    pub fn record(&self, lane: usize, kind: FlightEventKind, job: u64, label: Option<TaskLabel>) {
        let lane = lane.min(self.lanes.len() - 1);
        self.lanes[lane].push(FlightEvent {
            t: self.epoch.elapsed().as_secs_f64(),
            kind,
            job,
            label,
        });
    }

    /// Total events evicted across all lanes (how much history was lost).
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped()).sum()
    }

    /// Total events currently retained.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the retained events as a self-contained chrome-trace JSON
    /// fragment: instant events (`ph:"i"`) on one `tid` per lane, plus
    /// thread-name metadata and a top-level `trigger` field naming the
    /// failure class that caused the dump. Within each lane, timestamps are
    /// monotone because the ring preserves insertion order.
    pub fn chrome_trace_fragment(&self, trigger: &str) -> String {
        let mut events = Vec::new();
        for (lane, ring) in self.lanes.iter().enumerate() {
            let lane_name = if lane == self.lanes.len() - 1 {
                "external".to_string()
            } else {
                format!("worker-{lane}")
            };
            events.push(serde_json::json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": lane,
                "args": serde_json::json!({"name": lane_name}),
            }));
            for ev in ring.snapshot() {
                let name = match ev.label {
                    Some(l) => format!("{} {}", ev.kind.name(), l),
                    None => ev.kind.name().to_string(),
                };
                events.push(serde_json::json!({
                    "name": name,
                    "cat": "flight",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": lane,
                    "ts": ev.t * 1e6,
                    "args": serde_json::json!({"job": ev.job}),
                }));
            }
        }
        let doc = serde_json::Value::Object(vec![
            ("trigger".to_string(), serde_json::Value::from(trigger)),
            ("dropped".to_string(), serde_json::Value::from(self.dropped() as f64)),
            ("traceEvents".to_string(), serde_json::Value::Array(events)),
        ]);
        serde_json::to_string(&doc).expect("flight fragment serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel};
    use std::sync::Arc;

    #[test]
    fn sched_counters_are_monotone() {
        let before = sched_counters().snapshot();
        sched_counters().tasks_dispatched.inc();
        sched_counters().tasks_completed.inc();
        let after = sched_counters().snapshot();
        assert!(after.tasks_dispatched > before.tasks_dispatched);
        assert!(after.tasks_completed > before.tasks_completed);
        assert_eq!(after.pairs().len(), 17);
    }

    #[test]
    fn recorder_keeps_depth_most_recent_events_per_lane() {
        let rec = FlightRecorder::new(2, 4);
        for i in 0..10 {
            rec.record(0, FlightEventKind::Dispatch, i, None);
        }
        rec.record(7, FlightEventKind::JobSubmit, 1, None); // folds to external
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(rec.nworkers(), 2);
    }

    #[test]
    fn thread_recorder_context_routes_events() {
        let rec = Arc::new(FlightRecorder::new(1, 8));
        set_thread_recorder(Arc::downgrade(&rec), 0);
        record_event(FlightEventKind::Retry, 42, Some(TaskLabel::new(TaskKind::Panel, 0, 0, 0)));
        set_thread_recorder(Weak::new(), usize::MAX);
        record_event(FlightEventKind::Retry, 43, None); // no recorder: dropped
        assert_eq!(rec.len(), 1);
        let evs = rec.lanes[0].snapshot();
        assert_eq!(evs[0].job, 42);
        assert_eq!(evs[0].kind, FlightEventKind::Retry);
    }

    #[test]
    fn fragment_is_valid_json_with_monotone_lane_timestamps() {
        let rec = FlightRecorder::new(2, 16);
        for i in 0..6 {
            rec.record(i % 2, FlightEventKind::Dispatch, i as u64, None);
            rec.record(i % 2, FlightEventKind::TaskOk, i as u64, None);
        }
        let frag = rec.chrome_trace_fragment("job_fail");
        let doc: serde_json::Value = serde_json::from_str(&frag).unwrap();
        assert_eq!(doc.get("trigger").and_then(|t| t.as_str()), Some("job_fail"));
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let mut last_ts = [f64::NEG_INFINITY; 4];
        for ev in events {
            if ev.get("ph").and_then(|p| p.as_str()) != Some("i") {
                continue;
            }
            let tid = ev.get("tid").and_then(|t| t.as_u64()).unwrap() as usize;
            let ts = ev.get("ts").and_then(|t| t.as_f64()).unwrap();
            assert!(ts >= last_ts[tid], "lane {tid} went backwards");
            last_ts[tid] = ts;
        }
    }
}
