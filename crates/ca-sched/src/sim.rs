//! Deterministic multicore simulator.
//!
//! Replays a task graph on `P` virtual cores with list scheduling: whenever a
//! core is idle and tasks are ready, the highest-priority ready task starts
//! on the lowest-numbered idle core. Task durations come from a caller-
//! supplied cost model (seconds per task, typically `flops / throughput`
//! with throughputs measured by `ca-bench`'s calibration on the host).
//!
//! This is the hardware-substitution layer documented in DESIGN.md: the
//! paper's 8-core Xeon and 16-core Opteron are replaced by simulated
//! machines executing the *same task DAGs* the threaded runtime executes,
//! so schedule-level effects (panel on the critical path, idle-time gaps of
//! Figure 3, lookahead) are reproduced faithfully.

use crate::fault::{ExecError, FaultAction, FaultPlan};
use crate::graph::TaskGraph;
use crate::profile::{Profile, QueueSample, TaskRecord};
use crate::task::TaskId;
use crate::trace::{Span, Timeline};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
struct ReadyEntry {
    priority: i64,
    id: TaskId,
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority.cmp(&other.priority).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(PartialEq)]
struct Completion {
    time: f64,
    worker: usize,
    task: TaskId,
    /// `Some(panicked)` when an injected fault fails this task on
    /// completion.
    failed: Option<bool>,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, worker): earliest completion first. total_cmp
        // keeps the order total even if a cost model produces NaN.
        other.time.total_cmp(&self.time).then(other.worker.cmp(&self.worker))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates executing `graph` on `nworkers` cores; `cost` maps a task id
/// and its metadata to a duration in seconds.
///
/// Returns the full [`Timeline`]. Deterministic: same inputs, same schedule.
///
/// # Panics
/// If `nworkers == 0`.
pub fn simulate<T>(
    graph: &TaskGraph<T>,
    nworkers: usize,
    cost: impl FnMut(TaskId, &crate::task::TaskMeta) -> f64,
) -> Timeline {
    try_simulate(graph, nworkers, cost, &FaultPlan::new())
        .expect("simulation without injected faults cannot fail")
}

/// [`simulate`] with deterministic fault injection: tasks `plan` fails (or
/// "panics") still occupy their core for their full cost, but on completion
/// cancel their transitive successors instead of releasing them, exactly
/// like the threaded executors. The rest of the graph drains; the first
/// failure comes back as an [`ExecError`] whose `lane` is the simulated
/// core index.
///
/// # Panics
/// If `nworkers == 0`.
pub fn try_simulate<T>(
    graph: &TaskGraph<T>,
    nworkers: usize,
    cost: impl FnMut(TaskId, &crate::task::TaskMeta) -> f64,
    plan: &FaultPlan,
) -> Result<Timeline, ExecError> {
    let (timeline, failure, _) = sim_core(graph, nworkers, cost, plan, false);
    match failure {
        None => Ok(timeline),
        Some(err) => Err(err),
    }
}

/// Profiling sibling of [`try_simulate`]: records the full task lifecycle
/// (exact ready/dispatch/start/end in simulated seconds, ready-heap depth
/// samples) and returns a [`Profile`] **always** — even when an injected
/// fault fails a task — with any failure reported on the side. Fully
/// deterministic: tests can assert exact metric values.
pub fn profile_simulate<T>(
    graph: &TaskGraph<T>,
    nworkers: usize,
    cost: impl FnMut(TaskId, &crate::task::TaskMeta) -> f64,
    plan: &FaultPlan,
) -> (Profile, Option<ExecError>) {
    let (_, failure, profile) = sim_core(graph, nworkers, cost, plan, true);
    (profile.expect("profiling enabled"), failure)
}

fn sim_core<T>(
    graph: &TaskGraph<T>,
    nworkers: usize,
    mut cost: impl FnMut(TaskId, &crate::task::TaskMeta) -> f64,
    plan: &FaultPlan,
    profile: bool,
) -> (Timeline, Option<ExecError>, Option<Profile>) {
    assert!(nworkers > 0, "need at least one simulated core");
    let n = graph.len();
    let mut preds: Vec<usize> = graph.npreds.clone();
    let mut ready: BinaryHeap<ReadyEntry> = BinaryHeap::new();
    for (id, &np) in preds.iter().enumerate() {
        if np == 0 {
            ready.push(ReadyEntry { priority: graph.metas[id].priority, id });
        }
    }

    let mut idle: Vec<usize> = (0..nworkers).rev().collect(); // pop() gives lowest index
    let mut events: BinaryHeap<Completion> = BinaryHeap::new();
    let mut timeline = Timeline::new(nworkers);
    let mut t = 0.0f64;
    // Tasks accounted for: executed or cancelled.
    let mut accounted = 0usize;
    let mut cancelled = vec![false; n];
    let mut failure: Option<ExecError> = None;
    // Profiling state: exact ready instants, lifecycle records, and
    // ready-heap depth samples (one per assignment round).
    let mut ready_at = vec![0.0f64; n];
    let mut records: Vec<TaskRecord> = Vec::new();
    let mut queue_samples: Vec<QueueSample> = Vec::new();

    while accounted < n {
        // Start as many ready tasks as there are idle cores, at time t.
        while !idle.is_empty() && !ready.is_empty() {
            let entry = ready.pop().expect("nonempty");
            let worker = idle.pop().expect("nonempty");
            let meta = &graph.metas[entry.id];
            let mut d = cost(entry.id, meta).max(0.0);
            // `failed` is Some(panicked) when a fault fires for this task.
            let failed = match plan.decide(&meta.label) {
                Some(FaultAction::Fail) => Some(false),
                Some(FaultAction::Panic) => Some(true),
                Some(FaultAction::Delay(extra)) => {
                    d += extra.as_secs_f64();
                    None
                }
                None => None,
            };
            timeline.lanes[worker].push(Span {
                task: entry.id,
                label: meta.label,
                start: t,
                end: t + d,
            });
            if profile {
                records.push(TaskRecord {
                    task: entry.id,
                    label: meta.label,
                    class: meta.class,
                    flops: meta.flops,
                    bytes: meta.bytes,
                    worker,
                    ready: ready_at[entry.id],
                    dispatch: t,
                    start: t,
                    end: t + d,
                });
            }
            events.push(Completion { time: t + d, worker, task: entry.id, failed });
        }
        if profile {
            queue_samples.push(QueueSample { t, depth: ready.len() });
        }

        // Advance to the next completion, draining any other completions at
        // the same instant so their cores are all available before the next
        // assignment round.
        let c = events.pop().expect("deadlock: no running task but graph unfinished");
        t = c.time;
        let mut batch = vec![c];
        while events.peek().map(|e| e.time <= t).unwrap_or(false) {
            batch.push(events.pop().expect("nonempty"));
        }
        for c in batch {
            idle.push(c.worker);
            accounted += 1;
            if let Some(panicked) = c.failed {
                // Cancel transitive successors: accounted without running.
                let mut stack: Vec<TaskId> = graph.succs[c.task].clone();
                while let Some(s) = stack.pop() {
                    if !cancelled[s] {
                        cancelled[s] = true;
                        accounted += 1;
                        stack.extend(graph.succs[s].iter().copied());
                    }
                }
                if failure.is_none() {
                    failure = Some(ExecError {
                        task: c.task,
                        label: graph.metas[c.task].label,
                        lane: c.worker,
                        message: if panicked { "injected panic" } else { "injected fault" }
                            .to_string(),
                        panicked,
                        cancelled: Vec::new(),
                    });
                }
            } else {
                for &s in &graph.succs[c.task] {
                    preds[s] -= 1;
                    if preds[s] == 0 && !cancelled[s] {
                        ready_at[s] = t;
                        ready.push(ReadyEntry { priority: graph.metas[s].priority, id: s });
                    }
                }
            }
        }
        idle.sort_unstable_by(|a, b| b.cmp(a)); // keep lowest-index-on-top
    }

    timeline.makespan = t;
    let cancelled_ids: Vec<TaskId> = (0..n).filter(|&id| cancelled[id]).collect();
    let profile_out = profile.then(|| {
        records.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
        Profile {
            scheduler: "simulator".to_string(),
            nworkers,
            makespan: t,
            records,
            edges: graph
                .succs
                .iter()
                .enumerate()
                .flat_map(|(a, ss)| ss.iter().map(move |&b| (a, b)))
                .collect(),
            queue_samples,
            steals: Vec::new(),
            cancelled: cancelled_ids.clone(),
        }
    });
    let failure = failure.map(|mut err| {
        err.cancelled = cancelled_ids;
        err
    });
    (timeline, failure, profile_out)
}

/// Convenience: simulate with durations equal to each task's `flops` field
/// divided by `flops_per_second`.
pub fn simulate_uniform<T>(graph: &TaskGraph<T>, nworkers: usize, flops_per_second: f64) -> Timeline {
    simulate(graph, nworkers, |_, m| m.flops / flops_per_second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel, TaskMeta};

    fn meta(flops: f64, priority: i64) -> TaskMeta {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), flops).with_priority(priority)
    }

    fn chain(n: usize, flops: f64) -> TaskGraph<()> {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..n {
            let id = g.add_task(meta(flops, 0), ());
            if let Some(p) = prev {
                g.add_dep(p, id);
            }
            prev = Some(id);
        }
        g
    }

    #[test]
    fn chain_is_serial_regardless_of_cores() {
        let g = chain(10, 2.0);
        let tl = simulate_uniform(&g, 8, 1.0);
        assert!((tl.makespan - 20.0).abs() < 1e-12);
        tl.validate();
    }

    #[test]
    fn independent_tasks_scale_perfectly() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        for _ in 0..8 {
            g.add_task(meta(3.0, 0), ());
        }
        let tl1 = simulate_uniform(&g, 1, 1.0);
        let tl4 = simulate_uniform(&g, 4, 1.0);
        let tl8 = simulate_uniform(&g, 8, 1.0);
        assert!((tl1.makespan - 24.0).abs() < 1e-12);
        assert!((tl4.makespan - 6.0).abs() < 1e-12);
        assert!((tl8.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounds_hold() {
        // Random-ish DAG: layered.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut prev_layer: Vec<usize> = Vec::new();
        for layer in 0..5 {
            let mut this = Vec::new();
            for i in 0..(3 + layer) {
                let id = g.add_task(meta((i + 1) as f64, 0), ());
                for &p in &prev_layer {
                    g.add_dep(p, id);
                }
                this.push(id);
            }
            prev_layer = this;
        }
        let p = 4;
        let tl = simulate_uniform(&g, p, 1.0);
        tl.validate();
        let total = g.total_flops();
        let cp = g.critical_path_flops();
        assert!(tl.makespan >= cp - 1e-9, "makespan below critical path");
        assert!(tl.makespan >= total / p as f64 - 1e-9, "makespan below work bound");
        assert!(tl.makespan <= total + 1e-9, "makespan above serial time");
    }

    #[test]
    fn priorities_break_ties() {
        // Two ready tasks, one core: higher priority runs first.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let lo = g.add_task(meta(1.0, 0), ());
        let hi = g.add_task(meta(1.0, 10), ());
        let tl = simulate_uniform(&g, 1, 1.0);
        let lane = &tl.lanes[0];
        assert_eq!(lane[0].task, hi);
        assert_eq!(lane[1].task, lo);
    }

    #[test]
    fn lookahead_priority_shortens_makespan() {
        // Classic case: a long task L and a short chain s1 -> s2 -> s3, two
        // cores. If the chain head starts first, makespan = max(L, 3s); if
        // the long task hogs the only... with 2 cores both run; make chain
        // long enough that starting order matters with 1 core + 1 chain.
        // Use 1 core: priority decides order but not makespan. Use a DAG
        // where wrong order creates idle: root releases {chain-head(hi), leaf},
        // chain: 3 x 1.0, leaf 1.0, 2 cores after root.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let root = g.add_task(meta(1.0, 0), ());
        let c1 = g.add_task(meta(1.0, 5), ());
        let leaf1 = g.add_task(meta(1.0, 0), ());
        let leaf2 = g.add_task(meta(1.0, 0), ());
        let c2 = g.add_task(meta(1.0, 5), ());
        let c3 = g.add_task(meta(1.0, 5), ());
        g.add_dep(root, c1);
        g.add_dep(root, leaf1);
        g.add_dep(root, leaf2);
        g.add_dep(c1, c2);
        g.add_dep(c2, c3);
        let tl = simulate_uniform(&g, 2, 1.0);
        // With chain prioritized: t=1 start c1+leaf1; t=2 c2+leaf2; t=3 c3.
        assert!((tl.makespan - 4.0).abs() < 1e-12, "makespan {}", tl.makespan);
    }

    #[test]
    fn zero_cost_tasks_do_not_hang() {
        let g = chain(100, 0.0);
        let tl = simulate_uniform(&g, 2, 1.0);
        assert_eq!(tl.makespan, 0.0);
        let spans: usize = tl.lanes.iter().map(|l| l.len()).sum();
        assert_eq!(spans, 100);
    }

    #[test]
    fn injected_fault_cancels_downstream_in_simulation() {
        // Chain of 10; fail the 4th started task: 6 tasks cancel, the
        // simulation still terminates, and the error names the task.
        let g = chain(10, 1.0);
        let plan = FaultPlan::new().fail_nth(4, |_| true);
        let err = try_simulate(&g, 4, |_, m| m.flops, &plan).unwrap_err();
        assert_eq!(err.task, 3);
        assert!(!err.panicked);
        assert_eq!(err.cancelled, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn independent_work_survives_simulated_fault() {
        // Two disjoint chains; panic in one must not touch the other.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut chains = Vec::new();
        for c in 0..2usize {
            let mut prev = None;
            for s in 0..5 {
                let m = TaskMeta::new(TaskLabel::new(TaskKind::Update, s, c, 0), 1.0);
                let id = g.add_task(m, ());
                if let Some(p) = prev {
                    g.add_dep(p, id);
                }
                prev = Some(id);
                chains.push(id);
            }
        }
        let plan = FaultPlan::new().panic_nth(1, |l| l.i == 0 && l.step == 1);
        let err = try_simulate(&g, 2, |_, m| m.flops, &plan).unwrap_err();
        assert!(err.panicked);
        assert_eq!(err.cancelled.len(), 3, "only the faulty chain's tail cancels");
        // All of chain 1 plus chain 0's steps 0..=1 executed.
        let tl_err = err;
        assert!(tl_err.cancelled.iter().all(|&id| (2..=4).contains(&id)));
    }

    #[test]
    fn empty_fault_plan_matches_simulate() {
        let g = chain(10, 2.0);
        let a = simulate_uniform(&g, 3, 1.0);
        let b = try_simulate(&g, 3, |_, m| m.flops / 1.0, &FaultPlan::new()).unwrap();
        assert_eq!(a.makespan, b.makespan);
    }
}
