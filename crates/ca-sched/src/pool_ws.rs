//! Work-stealing execution of a task graph — the Cilk-style alternative to
//! the centralized priority queue of [`crate::run_graph`].
//!
//! Each worker owns a LIFO deque; completing a task pushes its newly ready
//! successors locally, and idle workers steal from the global injector or
//! from peers. Global priorities (and hence the paper's lookahead-of-1
//! rule) are **not** honored — only depth-first locality — which is exactly
//! the trade-off this variant exists to expose: dynamic scheduling with
//! priorities (the paper's choice, PLASMA-like) versus pure work stealing.
//!
//! Failure semantics match [`crate::run_graph`]: a failed or panicking task
//! cancels its transitive successors, independent tasks still drain, and
//! [`try_run_graph_stealing`] reports the first failure as an
//! [`ExecError`].

use crate::fault::{ExecError, FaultAction, FaultPlan, TaskFailure};
use crate::graph::TaskGraph;
use crate::pool::{panic_message, ExecStats, FailureRecord, Job};
use crate::profile::{Collector, Profile};
use crate::task::TaskId;
use crate::trace::{Span, Timeline};
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Executes the graph on `nthreads` workers with work stealing, consuming
/// it. Returns after every runnable task has run. If a task fails or
/// panics, its transitive successors are cancelled and the first panic is
/// re-raised after the pool drains.
///
/// # Panics
/// Propagates task panics; panics if `nthreads == 0`.
pub fn run_graph_stealing(graph: TaskGraph<Job<'_>>, nthreads: usize) -> ExecStats {
    let (stats, failure, _) =
        exec_stealing(graph, nthreads, None, false, crate::persist::default_persistent());
    if let Some(rec) = failure {
        match rec.payload {
            Some(p) => std::panic::resume_unwind(p),
            None => panic!("task {} ({}) failed: {}", rec.task, rec.label, rec.message),
        }
    }
    stats
}

/// Fallible sibling of [`run_graph_stealing`]: drains the pool on failure
/// (cancelling the failed task's transitive successors) and returns an
/// [`ExecError`] identifying the failed task.
pub fn try_run_graph_stealing(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
) -> Result<ExecStats, ExecError> {
    try_run_graph_stealing_with_faults(graph, nthreads, &FaultPlan::new())
}

/// [`try_run_graph_stealing`] on the process-wide persistent worker pool:
/// lane 0 runs on the calling thread, the remaining lanes borrow hub
/// threads instead of spawning fresh ones (see
/// [`crate::run_graph_persistent`]).
pub fn try_run_graph_stealing_persistent(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
) -> Result<ExecStats, ExecError> {
    let (stats, failure, _) = exec_stealing(graph, nthreads, Some(&FaultPlan::new()), false, true);
    match failure {
        None => Ok(stats),
        Some(rec) => Err(rec.into_exec_error()),
    }
}

/// [`try_run_graph_stealing`] with deterministic fault injection.
pub fn try_run_graph_stealing_with_faults(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
    plan: &FaultPlan,
) -> Result<ExecStats, ExecError> {
    let (stats, failure, _) =
        exec_stealing(graph, nthreads, Some(plan), false, crate::persist::default_persistent());
    match failure {
        None => Ok(stats),
        Some(rec) => Err(rec.into_exec_error()),
    }
}

/// Profiling sibling of [`try_run_graph_stealing_with_faults`]: records the
/// full task lifecycle plus per-worker steal counters and returns a
/// [`Profile`] **always** — even when a task fails — with any failure
/// reported on the side. Pass `&FaultPlan::new()` for a fault-free profiled
/// run.
pub fn profile_run_graph_stealing(
    graph: TaskGraph<Job<'_>>,
    nthreads: usize,
    plan: &FaultPlan,
) -> (Profile, Option<ExecError>) {
    let (_, failure, profile) =
        exec_stealing(graph, nthreads, Some(plan), true, crate::persist::default_persistent());
    (profile.expect("profiling enabled"), failure.map(FailureRecord::into_exec_error))
}

fn exec_stealing<'s>(
    graph: TaskGraph<Job<'s>>,
    nthreads: usize,
    plan: Option<&FaultPlan>,
    profile: bool,
    persistent: bool,
) -> (ExecStats, Option<FailureRecord>, Option<Profile>) {
    assert!(nthreads > 0, "need at least one worker");
    let n = graph.len();
    let TaskGraph { metas, payloads, succs, npreds } = graph;
    let collector = profile.then(|| Collector::new(n, nthreads));

    let slots: Vec<Mutex<Option<Job<'s>>>> =
        payloads.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let preds: Vec<AtomicUsize> = npreds.iter().map(|&c| AtomicUsize::new(c)).collect();
    let cancel_flags: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let remaining = AtomicUsize::new(n);

    let injector: Injector<usize> = Injector::new();
    for (id, &np) in npreds.iter().enumerate() {
        if np == 0 {
            if let Some(c) = &collector {
                c.mark_ready(id, 0.0);
            }
            injector.push(id);
        }
    }
    let deques: Vec<Deque<usize>> = (0..nthreads).map(|_| Deque::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();

    let t0 = Instant::now();
    let lanes: Vec<Mutex<Vec<Span>>> = (0..nthreads).map(|_| Mutex::new(Vec::new())).collect();
    let fail_state: Mutex<Option<FailureRecord>> = Mutex::new(None);

    {
        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(nthreads);
        for (w, local) in deques.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let preds = &preds;
            let cancel_flags = &cancel_flags;
            let metas = &metas;
            let succs = &succs;
            let lanes = &lanes;
            let remaining = &remaining;
            let fail_state = &fail_state;
            let collector = collector.as_ref();
            bodies.push(Box::new(move || {
                let mut idle_spins = 0u32;
                loop {
                    // Local first, then the injector, then steal from peers.
                    let found = local.pop().or_else(|| {
                        let stolen = std::iter::repeat_with(|| {
                            injector
                                .steal_batch_and_pop(&local)
                                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
                        })
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success());
                        let counters = crate::telemetry::sched_counters();
                        counters.steal_attempts.inc();
                        if stolen.is_some() {
                            counters.steal_hits.inc();
                        }
                        if let Some(c) = collector {
                            c.count_steal(w, stolen.is_some());
                        }
                        stolen
                    });

                    let Some(id) = found else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    let dispatch = t0.elapsed().as_secs_f64();
                    crate::telemetry::sched_counters().tasks_dispatched.inc();

                    let job = slots[id].lock().take().expect("task executed twice");
                    let label = metas[id].label;
                    let fault = plan.and_then(|p| p.decide(&label));
                    let start = t0.elapsed().as_secs_f64();
                    let outcome = match fault {
                        Some(FaultAction::Fail) => {
                            drop(job);
                            Ok(Err(TaskFailure::new("injected fault")))
                        }
                        Some(FaultAction::Panic) => {
                            drop(job);
                            std::panic::catch_unwind(|| -> crate::fault::TaskResult {
                                panic!("injected panic")
                            })
                        }
                        Some(FaultAction::Delay(d)) => {
                            std::thread::sleep(d);
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                        }
                        None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)),
                    };
                    let end = t0.elapsed().as_secs_f64();
                    lanes[w].lock().push(Span { task: id, label, start, end });
                    if let Some(c) = collector {
                        c.record(w, id, &metas[id], dispatch, start, end);
                    }

                    let failure = match outcome {
                        Ok(Ok(())) => None,
                        Ok(Err(f)) => Some((f.message, false, None)),
                        Err(p) => Some((panic_message(p.as_ref()), true, Some(p))),
                    };
                    let counters = crate::telemetry::sched_counters();
                    if failure.is_none() {
                        counters.tasks_completed.inc();
                    } else {
                        counters.tasks_failed.inc();
                    }

                    if let Some((message, panicked, payload)) = failure {
                        // Cancel transitive successors instead of pushing
                        // them; they are accounted here, never scheduled.
                        let mut newly = Vec::new();
                        let mut stack: Vec<usize> = succs[id].clone();
                        while let Some(s) = stack.pop() {
                            if !cancel_flags[s].swap(true, Ordering::AcqRel) {
                                newly.push(s);
                                stack.extend(succs[s].iter().copied());
                            }
                        }
                        {
                            let mut rec = fail_state.lock();
                            match rec.as_mut() {
                                None => {
                                    *rec = Some(FailureRecord {
                                        task: id,
                                        label,
                                        lane: w,
                                        message,
                                        panicked,
                                        payload,
                                        cancelled: newly.clone(),
                                    });
                                }
                                Some(r) => r.cancelled.extend(newly.iter().copied()),
                            }
                        }
                        let drained = 1 + newly.len();
                        if remaining.fetch_sub(drained, Ordering::AcqRel) == drained {
                            return;
                        }
                        continue;
                    }

                    for &s in &succs[id] {
                        if preds[s].fetch_sub(1, Ordering::AcqRel) == 1
                            && !cancel_flags[s].load(Ordering::Acquire)
                        {
                            if let Some(c) = collector {
                                c.mark_ready(s, t0.elapsed().as_secs_f64());
                            }
                            local.push(s);
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        return;
                    }
                }
            }));
        }
        crate::persist::run_bodies(persistent, bodies);
    }

    let mut timeline = Timeline::new(nthreads);
    let mut executed = 0;
    for (w, lane) in lanes.into_iter().enumerate() {
        let mut spans = lane.into_inner();
        spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        executed += spans.len();
        timeline.lanes[w] = spans;
    }
    timeline.makespan = t0.elapsed().as_secs_f64();
    let profile = collector.map(|c| {
        let cancelled: Vec<TaskId> = (0..n)
            .filter(|&id| cancel_flags[id].load(Ordering::Acquire))
            .collect();
        c.finish("work-stealing", timeline.makespan, &succs, cancelled, true)
    });
    let stats = ExecStats { tasks: executed, wall_seconds: timeline.makespan, timeline };
    (stats, fail_state.into_inner(), profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::job;
    use crate::task::{TaskKind, TaskLabel, TaskMeta};
    use std::sync::atomic::AtomicU64;

    fn meta() -> TaskMeta {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0)
    }

    #[test]
    fn executes_all_tasks_once() {
        let counter = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..200 {
            g.add_task(meta(), job(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = run_graph_stealing(g, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(stats.tasks, 200);
        stats.timeline.validate();
    }

    #[test]
    fn respects_dependencies() {
        let clock = AtomicU64::new(0);
        let stamps: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        // Chain of 40 tasks.
        let mut prev = None;
        for i in 0..40usize {
            let clock = &clock;
            let stamps = &stamps;
            let id = g.add_task(meta(), job(move || {
                stamps[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            }));
            if let Some(p) = prev {
                g.add_dep(p, id);
            }
            prev = Some(id);
        }
        run_graph_stealing(g, 4);
        for i in 1..40 {
            assert!(stamps[i - 1].load(Ordering::SeqCst) < stamps[i].load(Ordering::SeqCst));
        }
    }

    #[test]
    fn diamond_fanout() {
        let total = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let total_ref = &total;
        let root = g.add_task(meta(), job(move || {
            total_ref.fetch_add(1, Ordering::Relaxed);
        }));
        let mids: Vec<_> = (0..64)
            .map(|_| {
                let id = g.add_task(meta(), job(move || {
                    total_ref.fetch_add(1, Ordering::Relaxed);
                }));
                g.add_dep(root, id);
                id
            })
            .collect();
        let sink = g.add_task(meta(), job(move || {
            total_ref.fetch_add(1, Ordering::Relaxed);
        }));
        for m in mids {
            g.add_dep(m, sink);
        }
        run_graph_stealing(g, 8);
        assert_eq!(total.load(Ordering::Relaxed), 66);
    }

    #[test]
    fn task_panic_propagates() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        g.add_task(meta(), job(|| panic!("boom")));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_graph_stealing(g, 2)));
        assert!(r.is_err());
    }

    #[test]
    fn failure_cancels_successors_under_stealing() {
        let ran = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let bad = g.add_task(meta(), Box::new(|| Err(TaskFailure::new("boom"))));
        let ran_ref = &ran;
        let dep = g.add_task(meta(), job(move || {
            ran_ref.fetch_add(1, Ordering::SeqCst);
        }));
        let free = g.add_task(meta(), job(move || {
            ran_ref.fetch_add(1, Ordering::SeqCst);
        }));
        g.add_dep(bad, dep);
        let err = try_run_graph_stealing(g, 4).unwrap_err();
        assert_eq!(err.task, bad);
        assert_eq!(err.cancelled, vec![dep]);
        let _ = free;
        assert_eq!(ran.load(Ordering::SeqCst), 1, "independent task must still run");
    }

    #[test]
    fn fault_injection_under_stealing() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let ids: Vec<_> = (0..10)
            .map(|i| {
                let m = TaskMeta::new(TaskLabel::new(TaskKind::Update, i, 0, 0), 1.0);
                g.add_task(m, job(|| {}))
            })
            .collect();
        for pair in ids.windows(2) {
            g.add_dep(pair[0], pair[1]);
        }
        let plan = FaultPlan::new().panic_nth(1, |l| l.step == 5);
        let err = try_run_graph_stealing_with_faults(g, 3, &plan).unwrap_err();
        assert_eq!(err.task, ids[5]);
        assert!(err.panicked);
        assert_eq!(err.cancelled.len(), 4);
    }
}
