//! Work-stealing execution of a task graph — the Cilk-style alternative to
//! the centralized priority queue of [`crate::run_graph`].
//!
//! Each worker owns a LIFO deque; completing a task pushes its newly ready
//! successors locally, and idle workers steal from the global injector or
//! from peers. Global priorities (and hence the paper's lookahead-of-1
//! rule) are **not** honored — only depth-first locality — which is exactly
//! the trade-off this variant exists to expose: dynamic scheduling with
//! priorities (the paper's choice, PLASMA-like) versus pure work stealing.

use crate::graph::TaskGraph;
use crate::pool::{ExecStats, Job};
use crate::trace::{Span, Timeline};
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Executes the graph on `nthreads` workers with work stealing, consuming
/// it. Returns after every task has run; propagates the first task panic.
///
/// # Panics
/// Propagates task panics; panics if `nthreads == 0`.
pub fn run_graph_stealing(graph: TaskGraph<Job<'_>>, nthreads: usize) -> ExecStats {
    assert!(nthreads > 0, "need at least one worker");
    let n = graph.len();
    let TaskGraph { metas, payloads, succs, npreds } = graph;

    let slots: Vec<Mutex<Option<Job<'_>>>> =
        payloads.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let preds: Vec<AtomicUsize> = npreds.iter().map(|&c| AtomicUsize::new(c)).collect();
    let remaining = AtomicUsize::new(n);

    let injector: Injector<usize> = Injector::new();
    for id in 0..n {
        if npreds[id] == 0 {
            injector.push(id);
        }
    }
    let deques: Vec<Deque<usize>> = (0..nthreads).map(|_| Deque::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();

    let t0 = Instant::now();
    let lanes: Vec<Mutex<Vec<Span>>> = (0..nthreads).map(|_| Mutex::new(Vec::new())).collect();
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for (w, local) in deques.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let preds = &preds;
            let metas = &metas;
            let succs = &succs;
            let lanes = &lanes;
            let remaining = &remaining;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                let mut idle_spins = 0u32;
                loop {
                    // Local first, then the injector, then steal from peers.
                    let found = local.pop().or_else(|| {
                        std::iter::repeat_with(|| {
                            injector
                                .steal_batch_and_pop(&local)
                                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
                        })
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                    });

                    let Some(id) = found else {
                        if remaining.load(Ordering::Acquire) == 0 {
                            return;
                        }
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                        continue;
                    };
                    idle_spins = 0;

                    let job = slots[id].lock().take().expect("task executed twice");
                    let start = t0.elapsed().as_secs_f64();
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    let end = t0.elapsed().as_secs_f64();
                    lanes[w].lock().push(Span { task: id, label: metas[id].label, start, end });

                    if let Err(p) = result {
                        let mut slot = panic_payload.lock();
                        if slot.is_none() {
                            *slot = Some(p);
                        }
                    }
                    for &s in &succs[id] {
                        if preds[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                            local.push(s);
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        return;
                    }
                }
            });
        }
    });

    if let Some(p) = panic_payload.into_inner() {
        std::panic::resume_unwind(p);
    }

    let mut timeline = Timeline::new(nthreads);
    for (w, lane) in lanes.into_iter().enumerate() {
        let mut spans = lane.into_inner();
        spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        timeline.lanes[w] = spans;
    }
    timeline.makespan = t0.elapsed().as_secs_f64();
    ExecStats { tasks: n, wall_seconds: timeline.makespan, timeline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel, TaskMeta};
    use std::sync::atomic::AtomicU64;

    fn meta() -> TaskMeta {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0)
    }

    #[test]
    fn executes_all_tasks_once() {
        let counter = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        for _ in 0..200 {
            g.add_task(meta(), Box::new(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = run_graph_stealing(g, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(stats.tasks, 200);
        stats.timeline.validate();
    }

    #[test]
    fn respects_dependencies() {
        let clock = AtomicU64::new(0);
        let stamps: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        // Chain of 40 tasks.
        let mut prev = None;
        for i in 0..40usize {
            let clock = &clock;
            let stamps = &stamps;
            let id = g.add_task(meta(), Box::new(move || {
                stamps[i].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            }));
            if let Some(p) = prev {
                g.add_dep(p, id);
            }
            prev = Some(id);
        }
        run_graph_stealing(g, 4);
        for i in 1..40 {
            assert!(stamps[i - 1].load(Ordering::SeqCst) < stamps[i].load(Ordering::SeqCst));
        }
    }

    #[test]
    fn diamond_fanout() {
        let total = AtomicUsize::new(0);
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let total_ref = &total;
        let root = g.add_task(meta(), Box::new(move || {
            total_ref.fetch_add(1, Ordering::Relaxed);
        }));
        let mids: Vec<_> = (0..64)
            .map(|_| {
                let id = g.add_task(meta(), Box::new(move || {
                    total_ref.fetch_add(1, Ordering::Relaxed);
                }));
                g.add_dep(root, id);
                id
            })
            .collect();
        let sink = g.add_task(meta(), Box::new(move || {
            total_ref.fetch_add(1, Ordering::Relaxed);
        }));
        for m in mids {
            g.add_dep(m, sink);
        }
        run_graph_stealing(g, 8);
        assert_eq!(total.load(Ordering::Relaxed), 66);
    }

    #[test]
    fn task_panic_propagates() {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        g.add_task(meta(), Box::new(|| panic!("boom")));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_graph_stealing(g, 2)));
        assert!(r.is_err());
    }
}
