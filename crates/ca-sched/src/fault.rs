//! First-class task-failure semantics and deterministic fault injection.
//!
//! Jobs return [`TaskResult`]; a failed (or panicking) task makes the pool
//! **cancel the transitive successors** of that task instead of running
//! them on garbage, drain every task that does not depend on the failure,
//! and report an [`ExecError`] identifying the failed task, its label, the
//! worker lane it ran on, and the set of cancelled tasks.
//!
//! [`FaultPlan`] is the deterministic fault-injection harness used by the
//! stress tests: it fails, panics, or delays the N-th task matching a label
//! predicate, so scheduler failure paths can be exercised reproducibly
//! without bespoke panicking jobs.

use crate::task::{TaskId, TaskLabel};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Why a single task failed. Jobs return this; panics are caught by the
/// pool and converted into one.
#[derive(Clone, Debug)]
pub struct TaskFailure {
    /// Human-readable cause.
    pub message: String,
}

impl TaskFailure {
    /// Creates a failure with the given cause.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task failed: {}", self.message)
    }
}

impl std::error::Error for TaskFailure {}

impl From<String> for TaskFailure {
    fn from(message: String) -> Self {
        Self::new(message)
    }
}

impl From<&str> for TaskFailure {
    fn from(message: &str) -> Self {
        Self::new(message)
    }
}

/// What a job returns: `Ok(())` or a failure the pool turns into
/// cancellation of the task's transitive successors.
pub type TaskResult = Result<(), TaskFailure>;

/// The outcome of a graph execution that hit a failing task. Carries enough
/// identity to log, retry, or surface the failure upstream.
#[derive(Clone, Debug)]
pub struct ExecError {
    /// Id of the first task that failed.
    pub task: TaskId,
    /// Label of the failed task.
    pub label: TaskLabel,
    /// Worker lane the failed task ran on.
    pub lane: usize,
    /// Failure message (panic payload text or `TaskFailure` message).
    pub message: String,
    /// Whether the task panicked (vs. returning `Err`).
    pub panicked: bool,
    /// Every task cancelled because it transitively depended on a failed
    /// task (sorted, deduplicated; may span several failed tasks).
    pub cancelled: Vec<TaskId>,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} ({:?}) {} on worker {}: {} ({} successor task(s) cancelled)",
            self.task,
            self.label,
            if self.panicked { "panicked" } else { "failed" },
            self.lane,
            self.message,
            self.cancelled.len(),
        )
    }
}

impl std::error::Error for ExecError {}

/// What to inject when a [`FaultPlan`] rule fires.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// The task does not run; it reports a `TaskFailure`.
    Fail,
    /// The task does not run; the worker panics (caught by the pool).
    Panic,
    /// The task runs normally after sleeping, stressing drain ordering.
    Delay(Duration),
}

struct FaultRule {
    predicate: Box<dyn Fn(&TaskLabel) -> bool + Send + Sync>,
    /// 1-based index among the tasks matching `predicate`.
    nth: usize,
    action: FaultAction,
    hits: AtomicUsize,
}

/// Deterministic fault-injection plan: each rule fires on the N-th task
/// (in execution-start order) whose label matches its predicate.
///
/// Rules keep private hit counters, so a plan is single-use: build a fresh
/// plan per run.
#[derive(Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    fn rule(
        mut self,
        nth: usize,
        action: FaultAction,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        assert!(nth >= 1, "fault rules are 1-based: nth must be >= 1");
        self.rules.push(FaultRule {
            predicate: Box::new(predicate),
            nth,
            action,
            hits: AtomicUsize::new(0),
        });
        self
    }

    /// Fails the `nth` task matching `predicate` (1-based).
    pub fn fail_nth(
        self,
        nth: usize,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, FaultAction::Fail, predicate)
    }

    /// Panics on the `nth` task matching `predicate` (1-based).
    pub fn panic_nth(
        self,
        nth: usize,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, FaultAction::Panic, predicate)
    }

    /// Delays the `nth` task matching `predicate` (1-based) by `delay`.
    pub fn delay_nth(
        self,
        nth: usize,
        delay: Duration,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, FaultAction::Delay(delay), predicate)
    }

    /// Consults the plan as a task starts; returns the action to inject, if
    /// any. Counts one match per rule per call, atomically.
    pub fn decide(&self, label: &TaskLabel) -> Option<FaultAction> {
        for rule in &self.rules {
            if (rule.predicate)(label) {
                let hit = rule.hits.fetch_add(1, Ordering::AcqRel) + 1;
                if hit == rule.nth {
                    return Some(rule.action.clone());
                }
            }
        }
        None
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskKind, TaskLabel};

    fn label(step: usize) -> TaskLabel {
        TaskLabel::new(TaskKind::Panel, step, 0, 0)
    }

    #[test]
    fn nth_match_fires_once() {
        let plan = FaultPlan::new().fail_nth(2, |l| l.kind == TaskKind::Panel);
        assert!(plan.decide(&label(0)).is_none());
        assert!(matches!(plan.decide(&label(1)), Some(FaultAction::Fail)));
        assert!(plan.decide(&label(2)).is_none());
    }

    #[test]
    fn predicate_filters_labels() {
        let plan = FaultPlan::new().panic_nth(1, |l| l.step == 7);
        assert!(plan.decide(&label(3)).is_none());
        assert!(matches!(plan.decide(&label(7)), Some(FaultAction::Panic)));
    }

    #[test]
    fn exec_error_display_names_the_task() {
        let err = ExecError {
            task: 42,
            label: label(3),
            lane: 1,
            message: "boom".to_string(),
            panicked: true,
            cancelled: vec![43, 44],
        };
        let text = err.to_string();
        assert!(text.contains("42") && text.contains("boom") && text.contains("2 successor"));
    }
}
