//! Task-level recovery: write-set snapshots, bounded replay, and a seeded
//! chaos harness.
//!
//! PR 1 gave the executors *fail-fast* semantics: a failed or panicked task
//! cancels its transitive successors. This module adds the *recover* half.
//! A task wrapped by [`retrying_job`] / [`retrying_dyn_job`]:
//!
//! 1. snapshots its declared write-set (the per-task block regions the DAG
//!    builder recorded into the [`crate::AccessMap`]) before the first
//!    attempt,
//! 2. runs the body under a panic guard,
//! 3. on failure or panic restores the snapshot and replays the body up to
//!    [`RetryPolicy::max_retries`] times with bounded exponential backoff,
//! 4. returns `Err` — cancelling successors — only once retries are
//!    exhausted.
//!
//! Restoring the write-set is sufficient for idempotent replay because a
//! task's observable effects on the shared matrix are exactly its declared
//! writes (machine-checked by the static verifier and the shadow lease
//! registry), and side-storage slots (`OnceLock`s in the panel contexts)
//! are only filled at the very end of a successful body. Fault-free replays
//! are therefore bitwise-identical to a run that never faulted.
//!
//! [`ChaosPlan`] extends [`crate::FaultPlan`] into a seeded harness:
//! besides the deterministic N-th-match rules it injects failures, panics,
//! delays *and silent data corruption* at configurable per-task-class
//! rates. Decisions are a pure function of `(seed, label, occurrence)`, so
//! they do not depend on thread interleaving; injected failures and panics
//! fire *before* the body runs (after scribbling garbage over the write-set
//! to prove restoration works), so replay is always safe.

use crate::fault::{TaskFailure, TaskResult};
use crate::footprint::AccessMap;
use crate::multigraph::DynJob;
use crate::pool::Job;
use crate::task::{TaskId, TaskKind, TaskLabel};
use ca_matrix::{MatView, SharedMatrix};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How many times a failed task is replayed, and how long to wait between
/// attempts. The defaults (3 replays, 200 µs base, doubling, 10 ms cap) keep
/// worst-case per-task recovery latency far below kernel runtimes, so the
/// recovery overhead at paper-scale fault rates stays in single-digit
/// percent.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Replays after the first attempt (`0` disables recovery).
    pub max_retries: usize,
    /// Delay before the first replay.
    pub backoff: Duration,
    /// Multiplier applied to the delay after each replay.
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff: Duration::from_micros(200),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy that never replays (fail-fast, PR 1 semantics).
    pub fn none() -> Self {
        Self { max_retries: 0, ..Self::default() }
    }

    /// Sets the number of replays.
    pub fn with_max_retries(mut self, n: usize) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the base backoff delay.
    pub fn with_backoff(mut self, d: Duration) -> Self {
        self.backoff = d;
        self
    }

    /// Delay before replay number `retry` (0-based), exponential and capped.
    pub fn delay_for(&self, retry: usize) -> Duration {
        let mult = self.multiplier.max(1.0).powi(retry.min(32) as i32);
        let d = self.backoff.as_secs_f64() * mult;
        Duration::from_secs_f64(d.min(self.max_backoff.as_secs_f64()))
    }
}

/// What the chaos harness injects when a draw or rule fires.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosAction {
    /// Scribble over the task's write-set, then report a `TaskFailure`
    /// without running the body.
    Fail,
    /// Scribble over the write-set, then panic (caught by the retry
    /// wrapper) without running the body.
    Panic,
    /// Run the body normally after sleeping, stressing drain ordering.
    Delay(Duration),
    /// Run the body, then silently perturb one element of the write-set —
    /// the task *succeeds*; only an integrity probe can catch this.
    Corrupt,
}

/// Per-task-class injection rates for [`ChaosPlan`]. All rates are
/// probabilities in `[0, 1]` drawn independently per task attempt.
#[derive(Clone, Copy, Debug)]
pub struct ChaosProfile {
    /// Probability of an injected failure.
    pub fail_rate: f64,
    /// Probability of an injected panic.
    pub panic_rate: f64,
    /// Probability of an injected delay of [`ChaosProfile::delay`].
    pub delay_rate: f64,
    /// Sleep injected when the delay draw fires.
    pub delay: Duration,
    /// Probability of silent corruption of one written element.
    pub corrupt_rate: f64,
}

impl Default for ChaosProfile {
    /// The default chaos profile of the acceptance gate: 1% failures,
    /// 0.5% panics, 0.1% silent corruption, no delays.
    fn default() -> Self {
        Self {
            fail_rate: 0.01,
            panic_rate: 0.005,
            delay_rate: 0.0,
            delay: Duration::from_micros(50),
            corrupt_rate: 0.001,
        }
    }
}

impl ChaosProfile {
    /// A profile that injects nothing (for rule-only plans).
    pub fn quiet() -> Self {
        Self {
            fail_rate: 0.0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
            corrupt_rate: 0.0,
        }
    }

    /// Profile with the given failure rate (other rates unchanged).
    pub fn with_fail_rate(mut self, r: f64) -> Self {
        self.fail_rate = r;
        self
    }

    /// Profile with the given panic rate.
    pub fn with_panic_rate(mut self, r: f64) -> Self {
        self.panic_rate = r;
        self
    }

    /// Profile with the given corruption rate.
    pub fn with_corrupt_rate(mut self, r: f64) -> Self {
        self.corrupt_rate = r;
        self
    }

    fn total(&self) -> f64 {
        self.fail_rate + self.panic_rate + self.delay_rate + self.corrupt_rate
    }
}

struct ChaosRule {
    predicate: Box<dyn Fn(&TaskLabel) -> bool + Send + Sync>,
    /// 1-based index among the attempts matching `predicate`.
    nth: usize,
    action: ChaosAction,
    hits: AtomicUsize,
}

/// Seeded chaos-injection plan: the [`crate::FaultPlan`] idea extended with
/// rate-based injection and silent data corruption.
///
/// Two mechanisms compose:
///
/// * **Rules** fire on the N-th attempt (1-based, in decide order) whose
///   label matches a predicate — deterministic regardless of seed, used by
///   the retry-determinism tests.
/// * **Rates** draw from a hash of `(seed, label, occurrence)`, where the
///   occurrence number counts this label's attempts. The draw is a pure
///   function of those three values, so a given attempt of a given task
///   sees the same injection decision under any thread interleaving —
///   and a *replay* (occurrence + 1) gets a fresh draw, so chaos cannot
///   pin a task into an injection loop.
///
/// Like `FaultPlan`, a plan carries private counters and is single-use:
/// build a fresh plan (same seed) per run to reproduce a schedule.
pub struct ChaosPlan {
    seed: u64,
    profile: ChaosProfile,
    class_profiles: Vec<(TaskKind, ChaosProfile)>,
    rules: Vec<ChaosRule>,
    occurrences: Mutex<HashMap<TaskLabel, u64>>,
}

impl ChaosPlan {
    /// A plan with the default chaos profile (the acceptance gate's rates).
    pub fn new(seed: u64) -> Self {
        Self::with_profile(seed, ChaosProfile::default())
    }

    /// A plan that injects nothing by rate — rules still fire. This is the
    /// drop-in upgrade path from [`crate::FaultPlan`].
    pub fn quiet(seed: u64) -> Self {
        Self::with_profile(seed, ChaosProfile::quiet())
    }

    /// A plan with an explicit default profile.
    pub fn with_profile(seed: u64, profile: ChaosProfile) -> Self {
        assert!(profile.total() <= 1.0, "chaos rates must sum to at most 1");
        Self {
            seed,
            profile,
            class_profiles: Vec::new(),
            rules: Vec::new(),
            occurrences: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides the profile for one task class (e.g. higher GEMM rates).
    pub fn with_class_profile(mut self, kind: TaskKind, profile: ChaosProfile) -> Self {
        assert!(profile.total() <= 1.0, "chaos rates must sum to at most 1");
        self.class_profiles.retain(|(k, _)| *k != kind);
        self.class_profiles.push((kind, profile));
        self
    }

    /// The seed the rate draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn rule(
        mut self,
        nth: usize,
        action: ChaosAction,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        assert!(nth >= 1, "chaos rules are 1-based: nth must be >= 1");
        self.rules.push(ChaosRule {
            predicate: Box::new(predicate),
            nth,
            action,
            hits: AtomicUsize::new(0),
        });
        self
    }

    /// Fails the `nth` attempt matching `predicate` (1-based).
    pub fn fail_nth(
        self,
        nth: usize,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, ChaosAction::Fail, predicate)
    }

    /// Panics on the `nth` attempt matching `predicate` (1-based).
    pub fn panic_nth(
        self,
        nth: usize,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, ChaosAction::Panic, predicate)
    }

    /// Delays the `nth` attempt matching `predicate` (1-based).
    pub fn delay_nth(
        self,
        nth: usize,
        delay: Duration,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, ChaosAction::Delay(delay), predicate)
    }

    /// Silently corrupts the output of the `nth` attempt matching
    /// `predicate` (1-based).
    pub fn corrupt_nth(
        self,
        nth: usize,
        predicate: impl Fn(&TaskLabel) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.rule(nth, ChaosAction::Corrupt, predicate)
    }

    /// Whether the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
            && self.profile.total() == 0.0
            && self.class_profiles.iter().all(|(_, p)| p.total() == 0.0)
    }

    fn profile_for(&self, kind: TaskKind) -> &ChaosProfile {
        self.class_profiles
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(&self.profile, |(_, p)| p)
    }

    /// Consults the plan as a task attempt starts; returns the action to
    /// inject, if any. Every call counts one occurrence of `label` (and one
    /// match per rule whose predicate accepts it).
    pub fn decide(&self, label: &TaskLabel) -> Option<ChaosAction> {
        let occurrence = {
            let mut occ = self.occurrences.lock().unwrap_or_else(|e| e.into_inner());
            let c = occ.entry(*label).or_insert(0);
            *c += 1;
            *c
        };
        // Every matching rule advances its counter (unlike `FaultPlan`,
        // which stops at the first firing rule): a retried attempt must be
        // visible to all rules, or N-th-match injection sequences would
        // depend on which earlier rule happened to fire.
        let mut fired = None;
        for rule in &self.rules {
            if (rule.predicate)(label) {
                let hit = rule.hits.fetch_add(1, Ordering::AcqRel) + 1;
                if hit == rule.nth && fired.is_none() {
                    fired = Some(rule.action.clone());
                }
            }
        }
        if fired.is_some() {
            return fired;
        }
        let p = self.profile_for(label.kind);
        if p.total() == 0.0 {
            return None;
        }
        let u = unit_draw(mix(self.seed, label, occurrence));
        let mut edge = p.fail_rate;
        if u < edge {
            return Some(ChaosAction::Fail);
        }
        edge += p.panic_rate;
        if u < edge {
            return Some(ChaosAction::Panic);
        }
        edge += p.corrupt_rate;
        if u < edge {
            return Some(ChaosAction::Corrupt);
        }
        edge += p.delay_rate;
        if u < edge {
            return Some(ChaosAction::Delay(p.delay));
        }
        None
    }
}

/// splitmix64 finalizer — a well-mixed 64-bit hash of its input.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic draw identity for one attempt of one task.
fn mix(seed: u64, label: &TaskLabel, occurrence: u64) -> u64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ (label.kind as u64).wrapping_mul(0x100000001b3));
    h = splitmix64(h ^ label.step as u64);
    h = splitmix64(h ^ ((label.i as u64) << 20) ^ (label.j as u64));
    splitmix64(h ^ occurrence)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit_draw(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Counters shared by every recovery wrapper of a run (or of a whole
/// service). All methods are lock-free; snapshot with
/// [`RecoveryCounters::snapshot`].
#[derive(Debug, Default)]
pub struct RecoveryCounters {
    attempts: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
    exhausted: AtomicU64,
    restores: AtomicU64,
    injected_failures: AtomicU64,
    injected_panics: AtomicU64,
    injected_delays: AtomicU64,
    injected_corruptions: AtomicU64,
}

impl RecoveryCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> RecoveryStats {
        RecoveryStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered_tasks: self.recovered.load(Ordering::Relaxed),
            exhausted_tasks: self.exhausted.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            injected_failures: self.injected_failures.load(Ordering::Relaxed),
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            injected_corruptions: self.injected_corruptions.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`RecoveryCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct RecoveryStats {
    /// Task body attempts (first tries + replays).
    pub attempts: u64,
    /// Replays after a failed attempt.
    pub retries: u64,
    /// Tasks that failed at least once and then succeeded.
    pub recovered_tasks: u64,
    /// Tasks that failed every attempt (successors were cancelled).
    pub exhausted_tasks: u64,
    /// Write-set snapshot restorations performed.
    pub restores: u64,
    /// Failures injected by a [`ChaosPlan`].
    pub injected_failures: u64,
    /// Panics injected by a [`ChaosPlan`].
    pub injected_panics: u64,
    /// Delays injected by a [`ChaosPlan`].
    pub injected_delays: u64,
    /// Silent corruptions injected by a [`ChaosPlan`].
    pub injected_corruptions: u64,
}

/// One element rectangle of a task's write-set (half-open ranges).
#[derive(Clone, Copy, Debug)]
struct WriteRect {
    row0: usize,
    row1: usize,
    col0: usize,
    col1: usize,
}

impl WriteRect {
    fn rows(&self) -> usize {
        self.row1 - self.row0
    }

    fn cols(&self) -> usize {
        self.col1 - self.col0
    }
}

/// The element regions a task declared it writes, resolved from block to
/// element coordinates and clipped to the matrix. Build once per task with
/// [`write_set`]; the retry wrapper snapshots and restores exactly these
/// elements.
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    rects: Vec<WriteRect>,
}

impl WriteSet {
    /// `true` for tasks that write no matrix blocks (reduction-tree nodes
    /// passing data through side storage).
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of elements covered (rectangles may not overlap per the
    /// builders' contract; used for cost accounting).
    pub fn elems(&self) -> usize {
        self.rects.iter().map(|r| r.rows() * r.cols()).sum()
    }

    /// Copies the current contents of every write rectangle.
    fn capture(&self, shared: &SharedMatrix) -> Vec<Vec<f64>> {
        self.rects
            .iter()
            .map(|r| {
                // SAFETY: the executor guarantees no concurrent writer
                // overlaps this task's declared footprint while the task
                // (and this wrapper around it) runs — the same contract the
                // body itself relies on. Reads within the declared write-set
                // also satisfy the shadow registry's containment check.
                unsafe { shared.block(r.row0, r.col0, r.rows(), r.cols()).to_vec() }
            })
            .collect()
    }

    /// Writes `saved` (from [`WriteSet::capture`]) back.
    // Raw block access is sound here for the same reason it is in the task
    // body: the restore touches only this task's declared write regions,
    // while the task holds exclusive access to them per the graph edges.
    #[allow(clippy::disallowed_methods)]
    fn restore(&self, shared: &SharedMatrix, saved: &[Vec<f64>]) {
        for (r, data) in self.rects.iter().zip(saved) {
            let src = MatView::from_slice(data, r.rows(), r.cols());
            // SAFETY: see `capture` — exclusive access per the graph edges.
            unsafe { shared.block_mut(r.row0, r.col0, r.rows(), r.cols()).copy_from(src) };
        }
    }

    /// Overwrites the write-set with garbage (what a task dying mid-kernel
    /// leaves behind) so injected faults genuinely exercise restoration.
    #[allow(clippy::disallowed_methods)]
    fn scribble(&self, shared: &SharedMatrix) {
        for r in &self.rects {
            // SAFETY: see `capture` — exclusive access per the graph edges.
            unsafe { shared.block_mut(r.row0, r.col0, r.rows(), r.cols()).fill(f64::NAN) };
        }
    }

    /// Perturbs one element (chosen by `h`) by a large finite factor — the
    /// silent-corruption model: plausible data, wrong value.
    #[allow(clippy::disallowed_methods)]
    fn corrupt_one(&self, shared: &SharedMatrix, h: u64) {
        if self.rects.is_empty() {
            return;
        }
        let r = &self.rects[(h % self.rects.len() as u64) as usize];
        let elems = (r.rows() * r.cols()) as u64;
        let idx = (h >> 16) % elems.max(1);
        let (i, j) = ((idx as usize) % r.rows(), (idx as usize) / r.rows());
        // SAFETY: see `capture` — exclusive access per the graph edges.
        let mut block = unsafe { shared.block_mut(r.row0, r.col0, r.rows(), r.cols()) };
        let v = block.at(i, j);
        let bad = if v.is_finite() { v.mul_add(1.0e6, 1.0e3) } else { 1.0e6 };
        block.set(i, j, bad);
    }
}

/// Resolves task `task`'s declared write regions from block coordinates
/// (`access` over a block grid of size `b`) to element rectangles clipped
/// to the `m × n` matrix. Declared element-rect writes (sub-tile
/// footprints) are included as-is.
pub fn write_set(access: &AccessMap, task: TaskId, b: usize, m: usize, n: usize) -> WriteSet {
    let rects = access
        .writes(task)
        .iter()
        .map(|region| WriteRect {
            row0: (region.rows.start * b).min(m),
            row1: (region.rows.end * b).min(m),
            col0: (region.cols.start * b).min(n),
            col1: (region.cols.end * b).min(n),
        })
        .chain(access.elem_writes(task).iter().map(|r| WriteRect {
            row0: r.row0,
            row1: r.row1,
            col0: r.col0,
            col1: r.col1,
        }))
        .filter(|r| r.row0 < r.row1 && r.col0 < r.col1)
        .collect();
    WriteSet { rects }
}

/// Runs `body` under the retry protocol. Returns `Ok` if any attempt
/// succeeds; `Err` (with the last failure) once retries are exhausted.
fn run_recovering(
    label: &TaskLabel,
    writes: &WriteSet,
    shared: &SharedMatrix,
    policy: &RetryPolicy,
    chaos: &ChaosPlan,
    counters: &RecoveryCounters,
    body: &(dyn Fn() + Send),
) -> TaskResult {
    // Keep the panic-hook filter installed for every attempt; the guard is
    // refcounted, so nested/concurrent recovery scopes share one install.
    let _hook = PanicHookGuard::new();
    let snapshot = if policy.max_retries > 0 && !writes.is_empty() {
        Some(writes.capture(shared))
    } else {
        None
    };
    let mut last = TaskFailure::new("task never attempted");
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            RecoveryCounters::add(&counters.retries);
            crate::telemetry::sched_counters().task_retries.inc();
            crate::telemetry::record_event(
                crate::telemetry::FlightEventKind::Retry,
                0,
                Some(*label),
            );
            std::thread::sleep(policy.delay_for(attempt - 1));
        }
        RecoveryCounters::add(&counters.attempts);
        let outcome = attempt_once(label, writes, shared, chaos, counters, body);
        match outcome {
            Ok(()) => {
                if attempt > 0 {
                    RecoveryCounters::add(&counters.recovered);
                }
                return Ok(());
            }
            Err(failure) => {
                last = failure;
                if let Some(saved) = &snapshot {
                    writes.restore(shared, saved);
                    RecoveryCounters::add(&counters.restores);
                    crate::telemetry::sched_counters().task_restores.inc();
                    crate::telemetry::record_event(
                        crate::telemetry::FlightEventKind::Restore,
                        0,
                        Some(*label),
                    );
                }
            }
        }
    }
    RecoveryCounters::add(&counters.exhausted);
    Err(last)
}

/// One attempt: consult chaos, run the body under a panic guard.
fn attempt_once(
    label: &TaskLabel,
    writes: &WriteSet,
    shared: &SharedMatrix,
    chaos: &ChaosPlan,
    counters: &RecoveryCounters,
    body: &(dyn Fn() + Send),
) -> TaskResult {
    let decision = chaos.decide(label);
    if decision.is_some() {
        crate::telemetry::sched_counters().chaos_injections.inc();
        crate::telemetry::record_event(crate::telemetry::FlightEventKind::Inject, 0, Some(*label));
    }
    match decision {
        Some(ChaosAction::Fail) => {
            RecoveryCounters::add(&counters.injected_failures);
            writes.scribble(shared);
            Err(TaskFailure::new(format!("chaos: injected failure at {label}")))
        }
        Some(ChaosAction::Panic) => {
            RecoveryCounters::add(&counters.injected_panics);
            writes.scribble(shared);
            // Route the injection through a real unwind so the catch path
            // is exercised, not just simulated.
            guarded(|| panic!("chaos: injected panic at {label}"))
        }
        Some(ChaosAction::Delay(d)) => {
            RecoveryCounters::add(&counters.injected_delays);
            std::thread::sleep(d);
            guarded(body)
        }
        Some(ChaosAction::Corrupt) => {
            let r = guarded(body);
            if r.is_ok() && !writes.is_empty() {
                RecoveryCounters::add(&counters.injected_corruptions);
                writes.corrupt_one(shared, splitmix64(mix(chaos.seed, label, u64::MAX)));
            }
            r
        }
        None => guarded(body),
    }
}

thread_local! {
    /// Set while a recovery-guarded body runs on this thread, so the panic
    /// hook can tell a caught-and-replayed panic from a genuine crash.
    static IN_GUARDED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The hook that was installed before the recovery filter, shareable so a
/// panicking thread can keep running it while another thread uninstalls.
type PrevHook = dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync;

struct FilterState {
    /// Live [`PanicHookGuard`]s; the filter is installed while `refs > 0`.
    refs: usize,
    /// The hook that was current when the first guard was created.
    prev: Option<Arc<PrevHook>>,
}

static FILTER: Mutex<FilterState> = Mutex::new(FilterState { refs: 0, prev: None });

/// RAII scope for the recovery panic-hook filter.
///
/// While at least one guard is alive, a process-wide panic hook is
/// installed that stays silent for panics unwinding out of a recovery
/// guard — they are converted to [`TaskFailure`]s and replayed (or, in a
/// chaos drill, injected on purpose), so the default message-plus-backtrace
/// spew is pure noise. Panics anywhere else are forwarded to whatever hook
/// was installed when the first guard was created.
///
/// When the last guard drops, that previous hook's behavior is restored
/// (re-wrapped in a fresh `Box`, so a pointer-identity comparison against
/// the original would fail, but the behavior is the embedder's own). Every
/// `run_recovering` call holds a guard for its duration; long-lived hosts
/// (the serve tier) hold one across their whole lifetime so the hook is not
/// churned per task. Caveat: if an embedder *replaces* the hook while
/// guards are alive, the last guard's drop restores the pre-guard hook over
/// the embedder's replacement — scoped saving cannot detect foreign
/// `set_hook` calls.
#[derive(Debug)]
pub struct PanicHookGuard(());

impl PanicHookGuard {
    /// Installs the filter (first guard) or joins the existing scope.
    pub fn new() -> Self {
        let mut st = FILTER.lock().expect("panic-filter state poisoned");
        st.refs += 1;
        if st.refs == 1 {
            let prev: Arc<PrevHook> = Arc::from(std::panic::take_hook());
            st.prev = Some(Arc::clone(&prev));
            std::panic::set_hook(Box::new(move |info| {
                if !IN_GUARDED.with(|g| g.get()) {
                    prev(info);
                }
            }));
        }
        Self(())
    }

    /// Number of live guards (exposed for tests).
    pub fn active() -> usize {
        FILTER.lock().expect("panic-filter state poisoned").refs
    }
}

impl Default for PanicHookGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PanicHookGuard {
    fn drop(&mut self) {
        let mut st = FILTER.lock().expect("panic-filter state poisoned");
        st.refs -= 1;
        if st.refs == 0 {
            if let Some(prev) = st.prev.take() {
                // Drop our filter and reinstate the saved hook's behavior.
                drop(std::panic::take_hook());
                std::panic::set_hook(Box::new(move |info| prev(info)));
            }
        }
    }
}

/// Runs `f` converting a panic into a `TaskFailure`. The caller (or an
/// enclosing scope) is expected to hold a [`PanicHookGuard`] so the unwind
/// stays silent; without one the panic is still caught, just noisy.
fn guarded(f: impl FnOnce()) -> TaskResult {
    let was = IN_GUARDED.with(|g| g.replace(true));
    let r = catch_unwind(AssertUnwindSafe(f));
    IN_GUARDED.with(|g| g.set(was));
    match r {
        Ok(()) => Ok(()),
        Err(payload) => Err(TaskFailure::new(crate::pool::panic_message(&payload))),
    }
}

/// Wraps a re-runnable task body as a scoped [`Job`] with snapshot/replay
/// recovery. The body must be `Fn` (re-callable) and must derive all its
/// inputs from state that the write-set restore returns to the pre-attempt
/// image — true for every DAG-builder kernel closure in this workspace.
#[allow(clippy::too_many_arguments)]
pub fn retrying_job<'s>(
    label: TaskLabel,
    writes: WriteSet,
    shared: &'s SharedMatrix,
    policy: RetryPolicy,
    chaos: &'s ChaosPlan,
    counters: &'s RecoveryCounters,
    body: impl Fn() + Send + 's,
) -> Job<'s> {
    Box::new(move || run_recovering(&label, &writes, shared, &policy, chaos, counters, &body))
}

/// Owning variant of [`retrying_job`] for [`crate::MultiFrontier`] graphs:
/// captures `Arc`s so the job can outlive the submitting call.
#[allow(clippy::too_many_arguments)]
pub fn retrying_dyn_job(
    label: TaskLabel,
    writes: WriteSet,
    shared: Arc<SharedMatrix>,
    policy: RetryPolicy,
    chaos: Arc<ChaosPlan>,
    counters: Arc<RecoveryCounters>,
    body: impl Fn() + Send + 'static,
) -> DynJob {
    Box::new(move || run_recovering(&label, &writes, &shared, &policy, &chaos, &counters, &body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use ca_matrix::Matrix;

    fn label(kind: TaskKind, step: usize) -> TaskLabel {
        TaskLabel::new(kind, step, 0, 0)
    }

    fn one_rect_set() -> WriteSet {
        WriteSet { rects: vec![WriteRect { row0: 0, row1: 4, col0: 0, col1: 4 }] }
    }

    #[test]
    fn chaos_decisions_are_deterministic_per_occurrence() {
        let l = label(TaskKind::Update, 3);
        let a = ChaosPlan::new(42);
        let b = ChaosPlan::new(42);
        let da: Vec<_> = (0..200).map(|_| a.decide(&l)).collect();
        let db: Vec<_> = (0..200).map(|_| b.decide(&l)).collect();
        assert_eq!(da, db, "same seed, same label sequence, same decisions");
        let c = ChaosPlan::new(43);
        let dc: Vec<_> = (0..200).map(|_| c.decide(&l)).collect();
        assert_ne!(da, dc, "different seed should differ somewhere in 200 draws");
    }

    #[test]
    fn chaos_rates_roughly_match_over_many_draws() {
        let plan = ChaosPlan::with_profile(
            7,
            ChaosProfile::quiet().with_fail_rate(0.2),
        );
        let mut fails = 0;
        for step in 0..5000 {
            if plan.decide(&label(TaskKind::Update, step)).is_some() {
                fails += 1;
            }
        }
        let rate = fails as f64 / 5000.0;
        assert!((0.15..0.25).contains(&rate), "observed fail rate {rate}");
    }

    #[test]
    fn quiet_plan_with_rules_fires_exactly_nth() {
        let plan = ChaosPlan::quiet(0).fail_nth(2, |l| l.kind == TaskKind::Panel);
        let l = label(TaskKind::Panel, 0);
        assert!(plan.decide(&l).is_none());
        assert_eq!(plan.decide(&l), Some(ChaosAction::Fail));
        assert!(plan.decide(&l).is_none());
        assert!(plan.decide(&label(TaskKind::Update, 0)).is_none());
    }

    #[test]
    fn class_profile_overrides_default() {
        let plan = ChaosPlan::with_profile(9, ChaosProfile::quiet())
            .with_class_profile(TaskKind::Update, ChaosProfile::quiet().with_fail_rate(1.0));
        assert_eq!(plan.decide(&label(TaskKind::Update, 0)), Some(ChaosAction::Fail));
        assert!(plan.decide(&label(TaskKind::Panel, 0)).is_none());
    }

    #[test]
    fn write_set_clips_to_matrix() {
        let mut access = AccessMap::new(3, 3);
        access.record_write(0, 1..3, 2..3);
        let ws = write_set(&access, 0, 10, 25, 25);
        assert_eq!(ws.elems(), 15 * 5, "rows 10..25 x cols 20..25");
        let empty = write_set(&access, 1, 10, 25, 25);
        assert!(empty.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let shared = SharedMatrix::new(Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64));
        let ws = one_rect_set();
        let saved = ws.capture(&shared);
        ws.scribble(&shared);
        // SAFETY: single-threaded test.
        assert!(unsafe { shared.block(0, 0, 4, 4) }.at(1, 1).is_nan());
        ws.restore(&shared, &saved);
        let m = shared.into_inner();
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(3, 3)], 15.0);
    }

    #[test]
    fn corrupt_one_changes_exactly_one_element() {
        let orig = Matrix::from_fn(4, 4, |i, j| (i + j) as f64 + 1.0);
        let shared = SharedMatrix::new(orig.clone());
        one_rect_set().corrupt_one(&shared, 0xdeadbeef);
        let m = shared.into_inner();
        let changed = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .filter(|&(i, j)| m[(i, j)] != orig[(i, j)])
            .count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn retry_recovers_from_injected_faults() {
        let shared = SharedMatrix::new(Matrix::zeros(4, 4));
        let ws = one_rect_set();
        let l = label(TaskKind::Update, 0);
        let chaos = ChaosPlan::quiet(0)
            .fail_nth(1, |_| true)
            .panic_nth(2, |_| true);
        let counters = RecoveryCounters::new();
        let runs = AtomicUsize::new(0);
        let result = run_recovering(
            &l,
            &ws,
            &shared,
            &RetryPolicy::default().with_backoff(Duration::ZERO),
            &chaos,
            &counters,
            &|| {
                runs.fetch_add(1, Ordering::Relaxed);
                // SAFETY: single-threaded test, declared write region.
                #[allow(clippy::disallowed_methods)]
                unsafe {
                    shared.block_mut(0, 0, 4, 4).fill(1.0)
                };
            },
        );
        assert!(result.is_ok());
        assert_eq!(runs.load(Ordering::Relaxed), 1, "body ran once (injections precede it)");
        let stats = counters.snapshot();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.recovered_tasks, 1);
        assert_eq!(stats.injected_failures, 1);
        assert_eq!(stats.injected_panics, 1);
        assert_eq!(stats.restores, 2);
        let m = shared.into_inner();
        assert_eq!(m[(2, 2)], 1.0, "final attempt's writes survive");
    }

    #[test]
    fn exhausted_retries_restore_and_fail() {
        let shared = SharedMatrix::new(Matrix::from_fn(4, 4, |_, _| 7.0));
        let ws = one_rect_set();
        let l = label(TaskKind::Update, 0);
        let chaos = ChaosPlan::with_profile(0, ChaosProfile::quiet().with_fail_rate(1.0));
        let counters = RecoveryCounters::new();
        let policy = RetryPolicy::default().with_max_retries(2).with_backoff(Duration::ZERO);
        let result = run_recovering(&l, &ws, &shared, &policy, &chaos, &counters, &|| {});
        assert!(result.is_err());
        let stats = counters.snapshot();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.exhausted_tasks, 1);
        assert_eq!(stats.recovered_tasks, 0);
        let m = shared.into_inner();
        assert_eq!(m[(0, 0)], 7.0, "write-set restored even on exhaustion");
    }

    #[test]
    fn backoff_is_bounded() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff: Duration::from_millis(1),
            multiplier: 10.0,
            max_backoff: Duration::from_millis(5),
        };
        assert_eq!(p.delay_for(0), Duration::from_millis(1));
        assert_eq!(p.delay_for(1), Duration::from_millis(5));
        assert_eq!(p.delay_for(9), Duration::from_millis(5));
    }
}
