//! Static DAG soundness verifier.
//!
//! [`verify_graph`] proves — before a single task runs — that a task graph
//! plus its declared block footprints ([`AccessMap`]) is safe to execute on
//! a `SharedMatrix`: every pair of tasks whose declared regions conflict
//! (W–W, R–W, or W–R on an overlapping block) must be ordered by a
//! happens-before path in the DAG. It also re-checks structural invariants
//! (forward-only edges, consistent predecessor counts, every task
//! releasable) without trusting the builder, and lints the §III scheduling
//! rule that panel tasks of step `K+1` outrank the trailing updates of step
//! `K` (lookahead of 1).
//!
//! Happens-before is decided with a bitset transitive closure computed in
//! reverse topological order (`reach[t] = ∪ reach[s] ∪ {s}` over successors
//! `s`), `O(E · V/64)` time and `V²/8` bytes; graphs beyond
//! [`CLOSURE_TASK_LIMIT`] tasks fall back to a per-pair pruned DFS.

use crate::footprint::{AccessMap, BlockRegion};
use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskKind, TaskLabel};
use ca_matrix::shadow::ElemRect;
use ca_matrix::RegionSet;
use std::collections::{HashMap, HashSet};

/// Above this many tasks the verifier switches from the quadratic-memory
/// transitive closure to per-pair DFS reachability.
pub const CLOSURE_TASK_LIMIT: usize = 1 << 14;

/// Simulated worker count used by the edge lint when it re-simulates the
/// graph (with and without flagged edges) to report the lookahead metric.
const LINT_SIM_WORKERS: usize = 4;

/// Resolution at which conflicting accesses are enumerated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// Whole `b × b` tiles: two tasks conflict if they touch the same block
    /// cell. Conservative — element rects are widened to the cells they
    /// overlap, so disjoint sub-tile footprints still count as conflicts.
    #[default]
    Block,
    /// Exact element rectangles: two tasks conflict only if their resolved
    /// footprints overlap element-wise. Admits graphs that interleave
    /// disjoint triangles of one tile (e.g. L strictly below the diagonal,
    /// U on and above it).
    Rect,
}

impl core::fmt::Display for Granularity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::Block => "block",
            Self::Rect => "rect",
        })
    }
}

/// Options for [`verify_graph_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyOptions {
    /// Conflict-enumeration resolution.
    pub granularity: Granularity,
    /// Run the minimality analysis (edge-necessity, transitive-redundancy
    /// and dataflow lints) over the happens-before closure and attach a
    /// [`LintReport`] to the result.
    pub lint_edges: bool,
}

/// How two tasks' declared accesses of one block conflict. The first mode
/// belongs to the earlier task (lower id), the second to the later one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Both tasks write the block.
    WriteWrite,
    /// The earlier task reads, the later writes (anti-dependence).
    ReadWrite,
    /// The earlier task writes, the later reads (true dependence).
    WriteRead,
}

impl core::fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::WriteWrite => "W-W",
            Self::ReadWrite => "R-W",
            Self::WriteRead => "W-R",
        })
    }
}

/// A soundness violation found by [`verify_graph`] or by checked execution
/// mode.
#[derive(Clone, Debug, PartialEq)]
pub enum SoundnessError {
    /// An edge points backwards (or to itself) in topological insertion
    /// order — the graph could cycle.
    BackEdge {
        /// Source of the offending edge.
        from: TaskId,
        /// Target of the offending edge.
        to: TaskId,
    },
    /// A task's stored predecessor count disagrees with the edges — an
    /// executor would release it too early or never.
    InconsistentPreds {
        /// The task with the bad count.
        task: TaskId,
        /// Count stored in the graph.
        declared: usize,
        /// Count implied by the edges.
        counted: usize,
    },
    /// A task can never become ready (dangling: unreachable from the roots
    /// by dependency release).
    Unreleasable {
        /// The dangling task.
        task: TaskId,
        /// Its label.
        label: TaskLabel,
    },
    /// The access map mentions a task id the graph does not contain.
    UnknownTask {
        /// The unknown id.
        task: TaskId,
        /// Number of tasks in the graph.
        tasks: usize,
    },
    /// A declared region lies outside the block grid.
    RegionOutOfGrid {
        /// The declaring task.
        task: TaskId,
        /// Its label.
        label: TaskLabel,
        /// The offending region.
        region: BlockRegion,
        /// Grid rows.
        mb: usize,
        /// Grid columns.
        nb: usize,
    },
    /// A declared element rect lies outside the matrix extent.
    RectOutOfMatrix {
        /// The declaring task.
        task: TaskId,
        /// Its label.
        label: TaskLabel,
        /// The offending rect.
        rect: ElemRect,
        /// Matrix rows.
        m: usize,
        /// Matrix columns.
        n: usize,
    },
    /// Two tasks conflict on a block but no happens-before path orders them
    /// — executing the graph could race.
    UnorderedConflict {
        /// Earlier task (lower id).
        first: TaskId,
        /// Its label.
        first_label: TaskLabel,
        /// Later task (higher id).
        second: TaskId,
        /// Its label.
        second_label: TaskLabel,
        /// How the accesses conflict.
        kind: ConflictKind,
        /// The contested block `(i, j)`.
        block: (usize, usize),
    },
    /// Two tasks' resolved element footprints overlap but no happens-before
    /// path orders them (rect-granularity sibling of
    /// [`Self::UnorderedConflict`]).
    UnorderedRectConflict {
        /// Earlier task (lower id).
        first: TaskId,
        /// Its label.
        first_label: TaskLabel,
        /// Later task (higher id).
        second: TaskId,
        /// Its label.
        second_label: TaskLabel,
        /// How the accesses conflict.
        kind: ConflictKind,
        /// The overlapping element rectangle.
        rect: ElemRect,
    },
    /// Checked execution observed two concurrently live leases overlapping
    /// (at least one a write). Labels are rendered strings because the
    /// violation comes from the matrix-level shadow registry.
    Race {
        /// Label of the task holding the earlier lease.
        first: String,
        /// Label of the task that took the overlapping lease.
        second: String,
        /// Overlapping element rows `(start, end)`.
        rows: (usize, usize),
        /// Overlapping element columns `(start, end)`.
        cols: (usize, usize),
    },
    /// Checked execution observed a task touching elements outside its
    /// declared footprint.
    UndeclaredAccess {
        /// Label of the offending task.
        task: String,
        /// `true` for a mutable access.
        write: bool,
        /// Accessed element rows `(start, end)`.
        rows: (usize, usize),
        /// Accessed element columns `(start, end)`.
        cols: (usize, usize),
    },
}

impl core::fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BackEdge { from, to } => {
                write!(f, "edge {from} -> {to} violates topological order (possible cycle)")
            }
            Self::InconsistentPreds { task, declared, counted } => write!(
                f,
                "task {task} declares {declared} predecessors but edges imply {counted}"
            ),
            Self::Unreleasable { task, label } => {
                write!(f, "task {task} ({label}) can never become ready")
            }
            Self::UnknownTask { task, tasks } => {
                write!(f, "access map names task {task} but the graph has only {tasks} tasks")
            }
            Self::RegionOutOfGrid { task, label, region, mb, nb } => {
                write!(f, "task {task} ({label}) declares {region} outside the {mb}x{nb} grid")
            }
            Self::RectOutOfMatrix { task, label, rect, m, n } => {
                write!(f, "task {task} ({label}) declares {rect} outside the {m}x{n} matrix")
            }
            Self::UnorderedRectConflict { first, first_label, second, second_label, kind, rect } => {
                write!(
                    f,
                    "{kind} conflict on {rect} between task {first} ({first_label}) and \
                     task {second} ({second_label}) with no happens-before path"
                )
            }
            Self::UnorderedConflict { first, first_label, second, second_label, kind, block } => {
                write!(
                    f,
                    "{kind} conflict on block ({}, {}) between task {first} ({first_label}) and \
                     task {second} ({second_label}) with no happens-before path",
                    block.0, block.1
                )
            }
            Self::Race { first, second, rows, cols } => write!(
                f,
                "race: tasks {first} and {second} held overlapping leases on elements \
                 rows {}..{} × cols {}..{}",
                rows.0, rows.1, cols.0, cols.1
            ),
            Self::UndeclaredAccess { task, write, rows, cols } => write!(
                f,
                "task {task} {} elements rows {}..{} × cols {}..{} outside its declared footprint",
                if *write { "wrote" } else { "read" },
                rows.0,
                rows.1,
                cols.0,
                cols.1
            ),
        }
    }
}

impl std::error::Error for SoundnessError {}

/// A dependency edge flagged by the minimality lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeFinding {
    /// Edge source.
    pub from: TaskId,
    /// Its label.
    pub from_label: TaskLabel,
    /// Edge target.
    pub to: TaskId,
    /// Its label.
    pub to_label: TaskLabel,
}

impl core::fmt::Display for EdgeFinding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "edge {} ({}) -> {} ({})", self.from, self.from_label, self.to, self.to_label)
    }
}

/// A write whose next access (in the graph's serialization order) is
/// another write: dead under pure-overwrite semantics. Advisory — a
/// declared write may read-modify-write, which footprints cannot express.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShadowedWrite {
    /// The writing task.
    pub task: TaskId,
    /// Its label.
    pub label: TaskLabel,
    /// Elements of the write overwritten before any declared read.
    pub area: usize,
}

impl core::fmt::Display for ShadowedWrite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "task {} ({}) writes {} element(s) overwritten before any declared read",
            self.task, self.label, self.area
        )
    }
}

/// Result of the minimality analysis over the happens-before closure.
///
/// The two edge lists are each *sound to remove*, individually and
/// together: an unnecessary edge connects no pair of (transitive)
/// footprints that conflict, so no ordering obligation runs through it; a
/// redundant edge is implied by the rest of the graph (transitive
/// reduction preserves reachability). Every edge on a path connecting a
/// conflicting pair is justified by that pair's footprints in the
/// cumulative up/down sets, so unnecessary-edge removal can never break a
/// path that redundancy relies on.
///
/// The dataflow fields are advisory: cold reads are usually input loads,
/// and shadowed writes assume writes are pure overwrites (see
/// [`ShadowedWrite`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    /// Edges justified by no footprint conflict between the source's
    /// ancestry and the target's descendants.
    pub unnecessary_edges: Vec<EdgeFinding>,
    /// Edges implied by an alternative happens-before path.
    pub redundant_edges: Vec<EdgeFinding>,
    /// Edges skipped by the necessity lint because an endpoint declares no
    /// footprint (side-channel tasks, e.g. reduction-tree nodes).
    pub opaque_edges: usize,
    /// Elements read before any task wrote them (input loads).
    pub cold_read_area: usize,
    /// Writes overwritten before any declared read (advisory).
    pub shadowed_writes: Vec<ShadowedWrite>,
    /// Critical path of the graph as built.
    pub critical_path_flops: f64,
    /// Critical path with all flagged edges removed.
    pub reduced_critical_path_flops: f64,
    /// Total panel wait (PR 2 lookahead metric, simulated on
    /// [`LINT_SIM_WORKERS`] workers) of the graph as built.
    pub panel_wait_seconds: f64,
    /// Total panel wait with all flagged edges removed.
    pub reduced_panel_wait_seconds: f64,
}

impl LintReport {
    /// Number of minimality findings (flagged edges). Dataflow results are
    /// advisory and do not count.
    pub fn minimality_findings(&self) -> usize {
        self.unnecessary_edges.len() + self.redundant_edges.len()
    }
}

/// Statistics from a successful [`verify_graph`] run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    /// Tasks in the graph.
    pub tasks: usize,
    /// Dependency edges.
    pub edges: usize,
    /// Declared read/write regions (block regions + element rects).
    pub declared_regions: usize,
    /// Distinct blocks with at least one declared access.
    pub blocks_touched: usize,
    /// Conflicting task pairs proven ordered. At block granularity this
    /// counts same-cell candidate pairs; at rect granularity only pairs
    /// whose element footprints actually overlap.
    pub conflict_pairs: usize,
    /// Resolution the conflicts were enumerated at.
    pub granularity: Granularity,
    /// Lookahead-lint findings (§III priority rule). Informational:
    /// the tiled baselines intentionally schedule without lookahead.
    pub lookahead_warnings: Vec<String>,
    /// Minimality analysis, when requested via
    /// [`VerifyOptions::lint_edges`].
    pub lint: Option<LintReport>,
}

/// How many flagged-edge findings to spell out in the report rendering.
const DISPLAY_FINDING_CAP: usize = 20;

impl core::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "verified {} tasks, {} edges: {} conflicting pair(s) ordered across {} declared \
             region(s) on {} block(s)",
            self.tasks, self.edges, self.conflict_pairs, self.declared_regions, self.blocks_touched
        )?;
        if self.granularity == Granularity::Rect {
            writeln!(f, "granularity: rect (element-exact conflict enumeration)")?;
        }
        for w in &self.lookahead_warnings {
            writeln!(f, "warning: {w}")?;
        }
        if let Some(lint) = &self.lint {
            writeln!(
                f,
                "lint: {} unnecessary edge(s), {} transitively redundant edge(s) \
                 ({} opaque edge(s) skipped)",
                lint.unnecessary_edges.len(),
                lint.redundant_edges.len(),
                lint.opaque_edges
            )?;
            for e in lint.unnecessary_edges.iter().take(DISPLAY_FINDING_CAP) {
                writeln!(f, "lint: unnecessary {e}")?;
            }
            for e in lint.redundant_edges.iter().take(DISPLAY_FINDING_CAP) {
                writeln!(f, "lint: redundant {e}")?;
            }
            if lint.minimality_findings() > 0 {
                writeln!(
                    f,
                    "lint: without flagged edges: critical path {:.4e} -> {:.4e} flops, \
                     panel wait {:.4e} -> {:.4e} s on {LINT_SIM_WORKERS} workers",
                    lint.critical_path_flops,
                    lint.reduced_critical_path_flops,
                    lint.panel_wait_seconds,
                    lint.reduced_panel_wait_seconds
                )?;
            }
            let shadowed_area: usize = lint.shadowed_writes.iter().map(|s| s.area).sum();
            writeln!(
                f,
                "lint: dataflow: {} cold-read element(s); {} element(s) across {} write(s) \
                 shadowed by later writes",
                lint.cold_read_area,
                shadowed_area,
                lint.shadowed_writes.len()
            )?;
        }
        Ok(())
    }
}

/// Verifies that `graph` with declared footprints `access` is sound to
/// execute on a shared matrix: structurally valid, every task releasable,
/// and every conflicting block access ordered by a happens-before path.
///
/// Equivalent to [`verify_graph_with`] at block granularity with no lints.
pub fn verify_graph<T>(
    graph: &TaskGraph<T>,
    access: &AccessMap,
) -> Result<VerifyReport, SoundnessError> {
    verify_graph_with(graph, access, &VerifyOptions::default())
}

/// [`verify_graph`] with explicit [`VerifyOptions`]: conflict enumeration
/// at block or element-rect granularity, optionally followed by the
/// minimality analysis (see [`LintReport`]).
pub fn verify_graph_with<T>(
    graph: &TaskGraph<T>,
    access: &AccessMap,
    opts: &VerifyOptions,
) -> Result<VerifyReport, SoundnessError> {
    let n = graph.len();

    // Structure: forward-only edges, consistent predecessor counts. Checked
    // from scratch — the verifier must not trust builder discipline.
    let mut counted = vec![0usize; n];
    let mut edges = 0usize;
    for id in 0..n {
        for &s in graph.successors(id) {
            if s >= n {
                return Err(SoundnessError::UnknownTask { task: s, tasks: n });
            }
            if s <= id {
                return Err(SoundnessError::BackEdge { from: id, to: s });
            }
            counted[s] += 1;
            edges += 1;
        }
    }
    for (id, &c) in counted.iter().enumerate() {
        if c != graph.pred_count(id) {
            return Err(SoundnessError::InconsistentPreds {
                task: id,
                declared: graph.pred_count(id),
                counted: c,
            });
        }
    }

    // Completeness: dependency release (Kahn) must reach every task.
    let mut indeg = counted;
    let mut stack: Vec<TaskId> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut released = 0usize;
    while let Some(id) = stack.pop() {
        released += 1;
        for &s in graph.successors(id) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                stack.push(s);
            }
        }
    }
    if released < n {
        let task = (0..n).find(|&i| indeg[i] > 0).expect("some task unreleased");
        return Err(SoundnessError::Unreleasable { task, label: graph.meta(task).label });
    }

    // Footprint sanity: known tasks, block regions inside the grid,
    // element rects inside the matrix extent.
    let (mb, nb) = access.grid();
    let (bsz, em, en) = access.resolution_space();
    for t in 0..access.tasks() {
        if t >= n {
            if !access.reads(t).is_empty()
                || !access.writes(t).is_empty()
                || !access.elem_reads(t).is_empty()
                || !access.elem_writes(t).is_empty()
            {
                return Err(SoundnessError::UnknownTask { task: t, tasks: n });
            }
            continue;
        }
        for region in access.reads(t).iter().chain(access.writes(t)) {
            if region.rows.end > mb || region.cols.end > nb {
                return Err(SoundnessError::RegionOutOfGrid {
                    task: t,
                    label: graph.meta(t).label,
                    region: region.clone(),
                    mb,
                    nb,
                });
            }
        }
        for &rect in access.elem_reads(t).iter().chain(access.elem_writes(t)) {
            if rect.row1 > em || rect.col1 > en {
                return Err(SoundnessError::RectOutOfMatrix {
                    task: t,
                    label: graph.meta(t).label,
                    rect,
                    m: em,
                    n: en,
                });
            }
        }
    }

    // Happens-before: bitset transitive closure in reverse topological
    // order. reach[id] holds a bit per task reachable from id.
    let words = n.div_ceil(64);
    let use_closure = n <= CLOSURE_TASK_LIMIT;
    let mut reach: Vec<u64> = if use_closure { vec![0u64; n * words] } else { Vec::new() };
    if use_closure {
        for id in (0..n).rev() {
            let (head, tail) = reach.split_at_mut((id + 1) * words);
            let row = &mut head[id * words..];
            for &s in graph.successors(id) {
                row[s / 64] |= 1u64 << (s % 64);
                let srow = &tail[(s - id - 1) * words..(s - id) * words];
                for (d, &w) in row.iter_mut().zip(srow) {
                    *d |= w;
                }
            }
        }
    }
    let ordered = |a: TaskId, b: TaskId| -> bool {
        debug_assert!(a < b);
        if use_closure {
            reach[a * words + b / 64] & (1u64 << (b % 64)) != 0
        } else {
            dfs_reaches(graph, a, b)
        }
    };

    // Conflict enumeration: every conflicting pair must be ordered. Both
    // modes bucket accesses per block cell (element rects widened to the
    // cells they overlap); rect mode additionally carries the cell-clipped
    // rect and confirms element-wise overlap before demanding an ordering.
    let ntasks = access.tasks().min(n);
    let mut seen_pairs: HashSet<(TaskId, TaskId)> = HashSet::new();
    let blocks_touched;
    match opts.granularity {
        Granularity::Block => {
            let mut per_block: Vec<Vec<(TaskId, bool)>> = vec![Vec::new(); mb * nb];
            for t in 0..ntasks {
                for (regions, write) in [(access.reads(t), false), (access.writes(t), true)] {
                    for region in regions {
                        for j in region.cols.clone() {
                            for i in region.rows.clone() {
                                per_block[i + j * mb].push((t, write));
                            }
                        }
                    }
                }
                for (rects, write) in
                    [(access.elem_reads(t), false), (access.elem_writes(t), true)]
                {
                    for rect in rects {
                        for bj in rect.col0 / bsz..rect.col1.div_ceil(bsz) {
                            for bi in rect.row0 / bsz..rect.row1.div_ceil(bsz) {
                                per_block[bi + bj * mb].push((t, write));
                            }
                        }
                    }
                }
            }
            blocks_touched = per_block.iter().filter(|l| !l.is_empty()).count();
            for (bidx, list) in per_block.iter().enumerate() {
                for x in 0..list.len() {
                    for y in x + 1..list.len() {
                        let (t1, w1) = list[x];
                        let (t2, w2) = list[y];
                        if t1 == t2 || (!w1 && !w2) {
                            continue;
                        }
                        let (a, wa, b, wb) =
                            if t1 < t2 { (t1, w1, t2, w2) } else { (t2, w2, t1, w1) };
                        if !seen_pairs.insert((a, b)) {
                            continue;
                        }
                        if !ordered(a, b) {
                            return Err(SoundnessError::UnorderedConflict {
                                first: a,
                                first_label: graph.meta(a).label,
                                second: b,
                                second_label: graph.meta(b).label,
                                kind: conflict_kind(wa, wb),
                                block: (bidx % mb, bidx / mb),
                            });
                        }
                    }
                }
            }
        }
        Granularity::Rect => {
            let mut per_cell: Vec<Vec<(TaskId, bool, ElemRect)>> = vec![Vec::new(); mb * nb];
            for t in 0..ntasks {
                for (rects, write) in
                    [(access.resolved_reads(t), false), (access.resolved_writes(t), true)]
                {
                    for rect in rects {
                        for bj in rect.col0 / bsz..rect.col1.div_ceil(bsz) {
                            for bi in rect.row0 / bsz..rect.row1.div_ceil(bsz) {
                                let cell = ElemRect::new(
                                    bi * bsz..((bi + 1) * bsz).min(em),
                                    bj * bsz..((bj + 1) * bsz).min(en),
                                );
                                if let Some(clip) = rect.intersection(&cell) {
                                    per_cell[bi + bj * mb].push((t, write, clip));
                                }
                            }
                        }
                    }
                }
            }
            blocks_touched = per_cell.iter().filter(|l| !l.is_empty()).count();
            for list in &per_cell {
                for x in 0..list.len() {
                    for y in x + 1..list.len() {
                        let (t1, w1, r1) = list[x];
                        let (t2, w2, r2) = list[y];
                        if t1 == t2 || (!w1 && !w2) {
                            continue;
                        }
                        let Some(overlap) = r1.intersection(&r2) else { continue };
                        let (a, wa, b, wb) =
                            if t1 < t2 { (t1, w1, t2, w2) } else { (t2, w2, t1, w1) };
                        if !seen_pairs.insert((a, b)) {
                            continue;
                        }
                        if !ordered(a, b) {
                            return Err(SoundnessError::UnorderedRectConflict {
                                first: a,
                                first_label: graph.meta(a).label,
                                second: b,
                                second_label: graph.meta(b).label,
                                kind: conflict_kind(wa, wb),
                                rect: overlap,
                            });
                        }
                    }
                }
            }
        }
    }

    let lint = opts
        .lint_edges
        .then(|| lint_pass(graph, access, ordered));

    Ok(VerifyReport {
        tasks: n,
        edges,
        declared_regions: access.region_count() + access.elem_rect_count(),
        blocks_touched,
        conflict_pairs: seen_pairs.len(),
        granularity: opts.granularity,
        lookahead_warnings: lookahead_lint(graph),
        lint,
    })
}

/// Classifies a conflicting access pair; the first flag belongs to the
/// earlier task. Read-read pairs must be filtered out by the caller.
fn conflict_kind(wa: bool, wb: bool) -> ConflictKind {
    match (wa, wb) {
        (true, true) => ConflictKind::WriteWrite,
        (false, true) => ConflictKind::ReadWrite,
        (true, false) => ConflictKind::WriteRead,
        (false, false) => unreachable!("read-read pairs are skipped"),
    }
}

/// Transitive reduction through the verified removal path: deletes every
/// edge whose ordering another path already implies, and returns how many
/// were deleted.
///
/// Builders whose trackers reason per block cannot see orderings implied by
/// explicitly added edges (reduction trees, pivot broadcasts), so they
/// over-wire; this pass restores the unique minimal equivalent DAG. Sound
/// by construction: an edge `(a, b)` is deleted only when some other
/// successor of `a` still reaches `b`, so the happens-before closure — and
/// with it every conflict ordering and the executors' ready times — is
/// unchanged. Redundancy is decided against the original graph's closure,
/// which yields exactly the transitive reduction (unique for a DAG).
///
/// Graphs above [`CLOSURE_TASK_LIMIT`] are left untouched (returns 0).
pub fn reduce_transitive_edges<T>(graph: &mut TaskGraph<T>) -> usize {
    let n = graph.len();
    if n == 0 || n > CLOSURE_TASK_LIMIT {
        return 0;
    }
    // Same reverse-topological bitset closure as `verify_graph_with`.
    let words = n.div_ceil(64);
    let mut reach: Vec<u64> = vec![0u64; n * words];
    for id in (0..n).rev() {
        let (head, tail) = reach.split_at_mut((id + 1) * words);
        let row = &mut head[id * words..];
        for &s in graph.successors(id) {
            row[s / 64] |= 1u64 << (s % 64);
            let srow = &tail[(s - id - 1) * words..(s - id) * words];
            for (w, sw) in row.iter_mut().zip(srow) {
                *w |= sw;
            }
        }
    }
    let ordered =
        |a: TaskId, b: TaskId| -> bool { reach[a * words + b / 64] & (1u64 << (b % 64)) != 0 };
    let mut removed = 0;
    for a in 0..n {
        let succs: Vec<TaskId> = graph.successors(a).to_vec();
        for &b in &succs {
            if succs.iter().any(|&s| s != b && ordered(s, b)) {
                #[allow(clippy::disallowed_methods)] // this is the verified removal path
                let was_present = graph.remove_dep(a, b);
                debug_assert!(was_present);
                removed += 1;
            }
        }
    }
    removed
}

/// Pruned DFS reachability `a → b` (only ids in `(a, b]` can be on a path,
/// because edges go forward in id order).
fn dfs_reaches<T>(graph: &TaskGraph<T>, a: TaskId, b: TaskId) -> bool {
    let mut visited = HashSet::new();
    let mut stack = vec![a];
    while let Some(id) = stack.pop() {
        for &s in graph.successors(id) {
            if s == b {
                return true;
            }
            if s < b && visited.insert(s) {
                stack.push(s);
            }
        }
    }
    false
}

/// The minimality analysis: edge-necessity and transitive-redundancy over
/// the happens-before relation, plus dataflow lints over the resolved
/// element footprints. `ordered(a, b)` must answer reachability for
/// `a < b`. Runs only on graphs that already passed conflict enumeration,
/// so task-id order is a valid serialization of every conflicting access.
fn lint_pass<T>(
    graph: &TaskGraph<T>,
    access: &AccessMap,
    ordered: impl Fn(TaskId, TaskId) -> bool,
) -> LintReport {
    let n = graph.len();
    let ntasks = access.tasks().min(n);

    // Own footprints as region sets, in element coordinates.
    let own = |resolve: &dyn Fn(TaskId) -> Vec<ElemRect>| -> Vec<RegionSet> {
        (0..n)
            .map(|t| {
                if t < ntasks {
                    RegionSet::from_rects(resolve(t))
                } else {
                    RegionSet::new()
                }
            })
            .collect()
    };
    let own_r = own(&|t| access.resolved_reads(t));
    let own_w = own(&|t| access.resolved_writes(t));

    // Cumulative footprints: up[t] covers t and all its ancestors (topo =
    // id order), down[t] covers t and all its descendants. An edge (a, b)
    // is *justified* iff some ancestor-side access conflicts with some
    // descendant-side access — removing an unjustified edge cannot break
    // the ordering of any conflicting pair, because every edge on a path
    // connecting a conflicting pair (x, y) sees x's footprint in its up
    // set and y's in its down set, and is therefore justified by (x, y).
    let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for a in 0..n {
        for &s in graph.successors(a) {
            preds[s].push(a);
        }
    }
    let mut up_r: Vec<RegionSet> = Vec::with_capacity(n);
    let mut up_w: Vec<RegionSet> = Vec::with_capacity(n);
    for t in 0..n {
        let mut r = own_r[t].clone();
        let mut w = own_w[t].clone();
        for &p in &preds[t] {
            r.union_in_place(&up_r[p]);
            w.union_in_place(&up_w[p]);
        }
        r.coalesce();
        w.coalesce();
        up_r.push(r);
        up_w.push(w);
    }
    let mut down_r: Vec<RegionSet> = vec![RegionSet::new(); n];
    let mut down_w: Vec<RegionSet> = vec![RegionSet::new(); n];
    for t in (0..n).rev() {
        let mut r = own_r[t].clone();
        let mut w = own_w[t].clone();
        for &s in graph.successors(t) {
            r.union_in_place(&down_r[s]);
            w.union_in_place(&down_w[s]);
        }
        r.coalesce();
        w.coalesce();
        down_r[t] = r;
        down_w[t] = w;
    }

    let mut unnecessary_edges = Vec::new();
    let mut redundant_edges = Vec::new();
    let mut opaque_edges = 0usize;
    for a in 0..n {
        for &b in graph.successors(a) {
            let finding = || EdgeFinding {
                from: a,
                from_label: graph.meta(a).label,
                to: b,
                to_label: graph.meta(b).label,
            };
            // Necessity first: the stronger claim. Skipped (not flagged)
            // when an endpoint has no footprint — its payload flows through
            // side storage the footprints cannot see.
            let opaque = (own_r[a].is_empty() && own_w[a].is_empty())
                || (own_r[b].is_empty() && own_w[b].is_empty());
            if opaque {
                opaque_edges += 1;
            } else {
                let justified = up_w[a].intersects_set(&down_w[b])
                    || up_w[a].intersects_set(&down_r[b])
                    || up_r[a].intersects_set(&down_w[b]);
                if !justified {
                    unnecessary_edges.push(finding());
                    continue;
                }
            }
            // Transitive redundancy: another successor already reaches b
            // (edges only go forward in id order, so only s < b can).
            // Applies to opaque edges too — any alternative happens-before
            // path preserves side-channel ordering.
            if graph.successors(a).iter().any(|&s| s != b && s < b && ordered(s, b)) {
                redundant_edges.push(finding());
            }
        }
    }

    // Cost of the flagged edges: critical path and the PR 2 lookahead
    // metric (total panel wait), before and after removing them from a
    // structural copy. remove_dep is allowed here: the copy exists to
    // price the findings, not to execute.
    let critical_path_flops = graph.critical_path_flops();
    let sim = graph.map_ref(|_, _| ());
    let (profile, _) = crate::sim::profile_simulate(
        &sim,
        LINT_SIM_WORKERS,
        |_, m| m.flops,
        &crate::fault::FaultPlan::new(),
    );
    let panel_wait_seconds = profile.lookahead_metrics().total_wait;
    let (reduced_critical_path_flops, reduced_panel_wait_seconds) =
        if unnecessary_edges.is_empty() && redundant_edges.is_empty() {
            (critical_path_flops, panel_wait_seconds)
        } else {
            #[allow(clippy::disallowed_methods)]
            let mut reduced = sim;
            for e in unnecessary_edges.iter().chain(&redundant_edges) {
                #[allow(clippy::disallowed_methods)]
                reduced.remove_dep(e.from, e.to);
            }
            let (profile, _) = crate::sim::profile_simulate(
                &reduced,
                LINT_SIM_WORKERS,
                |_, m| m.flops,
                &crate::fault::FaultPlan::new(),
            );
            (reduced.critical_path_flops(), profile.lookahead_metrics().total_wait)
        };

    // Dataflow over the id-order serialization. Forward: reads of
    // never-written regions (input loads). Backward: writes whose next
    // access is another write (dead under pure-overwrite semantics).
    let mut written = RegionSet::new();
    let mut cold_read_area = 0usize;
    for t in 0..n {
        let mut cold = own_r[t].clone();
        cold.subtract(&written);
        cold_read_area += cold.area();
        written.union_in_place(&own_w[t]);
        written.coalesce();
    }
    let mut next_is_write = RegionSet::new();
    let mut shadowed_writes = Vec::new();
    for t in (0..n).rev() {
        let shadowed = own_w[t].intersect(&next_is_write);
        if !shadowed.is_empty() {
            shadowed_writes.push(ShadowedWrite {
                task: t,
                label: graph.meta(t).label,
                area: shadowed.area(),
            });
        }
        next_is_write.union_in_place(&own_w[t]);
        next_is_write.subtract(&own_r[t]);
        next_is_write.coalesce();
    }
    shadowed_writes.reverse();

    LintReport {
        unnecessary_edges,
        redundant_edges,
        opaque_edges,
        cold_read_area,
        shadowed_writes,
        critical_path_flops,
        reduced_critical_path_flops,
        panel_wait_seconds,
        reduced_panel_wait_seconds,
    }
}

/// Lints the paper's §III lookahead rule: the panel tasks of step `K+1`
/// should outrank the *trailing* (non-lookahead, block column ≠ `K+1`)
/// updates of step `K`, so panels start as soon as their column is ready.
fn lookahead_lint<T>(graph: &TaskGraph<T>) -> Vec<String> {
    let mut min_panel: HashMap<usize, i64> = HashMap::new();
    let mut max_trailing: HashMap<usize, i64> = HashMap::new();
    for id in 0..graph.len() {
        let m = graph.meta(id);
        match m.label.kind {
            TaskKind::Panel => {
                min_panel
                    .entry(m.label.step)
                    .and_modify(|p| *p = (*p).min(m.priority))
                    .or_insert(m.priority);
            }
            TaskKind::Update if m.label.j != m.label.step + 1 => {
                max_trailing
                    .entry(m.label.step)
                    .and_modify(|p| *p = (*p).max(m.priority))
                    .or_insert(m.priority);
            }
            _ => {}
        }
    }
    let mut warnings: Vec<String> = max_trailing
        .iter()
        .filter_map(|(&step, &maxu)| {
            let &minp = min_panel.get(&(step + 1))?;
            (minp <= maxu).then(|| {
                format!(
                    "panel tasks of step {} (min priority {minp}) do not outrank the trailing \
                     updates of step {step} (max priority {maxu}); lookahead-of-1 is not in effect",
                    step + 1
                )
            })
        })
        .collect();
    warnings.sort();
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdeps::BlockTracker;
    use crate::task::{TaskMeta, TaskKind};

    fn mk<T>(g: &mut TaskGraph<T>, kind: TaskKind, step: usize, i: usize, payload: T) -> TaskId {
        g.add_task(TaskMeta::new(TaskLabel::new(kind, step, i, 0), 1.0), payload)
    }

    /// Write-chain then fan-out reads then barrier write, via the tracker.
    fn tracked_graph() -> (TaskGraph<()>, AccessMap) {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let w0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        t.write(&mut g, w0, 0..4, 0..1);
        for i in 0..3 {
            let r = mk(&mut g, TaskKind::Update, 0, i, ());
            t.read(&mut g, r, 0..4, 0..1);
            t.write(&mut g, r, i..i + 1, 1..2);
        }
        let w1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        t.write(&mut g, w1, 0..4, 0..2);
        (g, t.into_access_map())
    }

    #[test]
    fn accepts_tracker_built_graph() {
        let (g, access) = tracked_graph();
        let report = verify_graph(&g, &access).expect("tracker-built graph is sound");
        assert_eq!(report.tasks, 5);
        assert!(report.conflict_pairs >= 7, "got {}", report.conflict_pairs);
        assert!(report.blocks_touched >= 5);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // probing the verifier with a raw edge deletion
    fn detects_removed_edge_as_unordered_conflict() {
        let (mut g, access) = tracked_graph();
        // Drop the RAW edge panel -> first reader; no other path orders them.
        assert!(g.remove_dep(0, 1));
        let err = verify_graph(&g, &access).expect_err("missing edge must be caught");
        match err {
            SoundnessError::UnorderedConflict { first, second, first_label, second_label, .. } => {
                assert_eq!((first, second), (0, 1));
                assert_eq!(first_label.kind, TaskKind::Panel);
                assert_eq!(second_label.kind, TaskKind::Update);
            }
            other => panic!("expected UnorderedConflict, got {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // probing the verifier with a raw edge deletion
    fn tracker_infers_minimal_edges_for_write_read_write() {
        // w0 -> r -> w1: the tracker must not add the transitively
        // redundant direct w0 -> w1 edge (r's WAR already orders the WAW
        // pair), and the minimal graph must still verify.
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let w0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        t.write(&mut g, w0, 0..1, 0..1);
        let r = mk(&mut g, TaskKind::Update, 0, 0, ());
        t.read(&mut g, r, 0..1, 0..1);
        let w1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        t.write(&mut g, w1, 0..1, 0..1);
        let access = t.into_access_map();
        assert!(!g.remove_dep(w0, w1), "tracker must skip the redundant WAW edge");
        let report = verify_graph(&g, &access).expect("minimal graph is still ordered");
        assert_eq!(report.conflict_pairs, 3);
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // probing the verifier with a raw edge deletion
    fn redundant_edge_removal_is_accepted() {
        // w0 -> r -> w1 plus a hand-added direct w0 -> w1 edge: dropping
        // the direct edge keeps the pair ordered through r.
        let mut g = TaskGraph::new();
        let w0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let r = mk(&mut g, TaskKind::Update, 0, 0, ());
        let w1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        g.add_dep(w0, r);
        g.add_dep(r, w1);
        g.add_dep(w0, w1);
        let mut access = AccessMap::new(2, 2);
        access.record_write(w0, 0..1, 0..1);
        access.record_read(r, 0..1, 0..1);
        access.record_write(w1, 0..1, 0..1);
        verify_graph(&g, &access).expect("redundant edge is harmless");
        assert!(g.remove_dep(w0, w1));
        verify_graph(&g, &access).expect("transitive path w0 -> r -> w1 still orders the pair");
    }

    #[test]
    fn detects_back_edge() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        mk(&mut g, TaskKind::Other, 0, 0, ());
        mk(&mut g, TaskKind::Other, 0, 1, ());
        // Forge a backward edge behind the API's back.
        g.succs[1].push(0);
        g.npreds[0] += 1;
        assert_eq!(
            verify_graph(&g, &AccessMap::new(1, 1)),
            Err(SoundnessError::BackEdge { from: 1, to: 0 })
        );
    }

    #[test]
    fn detects_inconsistent_pred_counts() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        mk(&mut g, TaskKind::Other, 0, 0, ());
        let b = mk(&mut g, TaskKind::Other, 0, 1, ());
        g.npreds[b] = 1; // no edge backs this up
        match verify_graph(&g, &AccessMap::new(1, 1)) {
            Err(SoundnessError::InconsistentPreds { task, declared, counted }) => {
                assert_eq!((task, declared, counted), (b, 1, 0));
            }
            other => panic!("expected InconsistentPreds, got {other:?}"),
        }
    }

    #[test]
    fn detects_region_outside_grid() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Other, 0, 0, ());
        let mut access = AccessMap::new(2, 2);
        access.record_write(a, 0..3, 0..1);
        match verify_graph(&g, &access) {
            Err(SoundnessError::RegionOutOfGrid { task, mb, nb, .. }) => {
                assert_eq!((task, mb, nb), (a, 2, 2));
            }
            other => panic!("expected RegionOutOfGrid, got {other:?}"),
        }
    }

    #[test]
    fn detects_unknown_task_in_access_map() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        mk(&mut g, TaskKind::Other, 0, 0, ());
        let mut access = AccessMap::new(2, 2);
        access.record_write(5, 0..1, 0..1);
        assert_eq!(
            verify_graph(&g, &access),
            Err(SoundnessError::UnknownTask { task: 5, tasks: 1 })
        );
    }

    #[test]
    fn lookahead_lint_flags_priority_inversion() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        // Step-0 trailing update (j=2) outranks the step-1 panel: warn.
        let upd = TaskMeta::new(TaskLabel::new(TaskKind::Update, 0, 0, 2), 1.0)
            .with_priority(1100);
        let pan = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 1, 0, 0), 1.0)
            .with_priority(900);
        let u = g.add_task(upd, ());
        let p = g.add_task(pan, ());
        g.add_dep(u, p);
        let report = verify_graph(&g, &AccessMap::new(1, 1)).unwrap();
        assert_eq!(report.lookahead_warnings.len(), 1);
        assert!(report.lookahead_warnings[0].contains("step 1"));
    }

    #[test]
    fn lookahead_column_update_may_outrank_panel() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        // The update of block column K+1 is *supposed* to outrank the panel
        // of step K+1 (it produces its input): no warning.
        let upd = TaskMeta::new(TaskLabel::new(TaskKind::Update, 0, 0, 1), 1.0)
            .with_priority(1100);
        let pan = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 1, 0, 0), 1.0)
            .with_priority(900);
        let u = g.add_task(upd, ());
        let p = g.add_task(pan, ());
        g.add_dep(u, p);
        let report = verify_graph(&g, &AccessMap::new(1, 1)).unwrap();
        assert!(report.lookahead_warnings.is_empty());
    }

    #[test]
    fn dfs_fallback_agrees_with_closure() {
        let (g, access) = tracked_graph();
        // Exercise the DFS path directly on each conflicting pair.
        assert!(dfs_reaches(&g, 0, 1));
        assert!(dfs_reaches(&g, 0, 4));
        assert!(!dfs_reaches(&g, 1, 2));
        let report = verify_graph(&g, &access).unwrap();
        assert!(report.conflict_pairs > 0);
    }

    fn rect_opts() -> VerifyOptions {
        VerifyOptions { granularity: Granularity::Rect, lint_edges: false }
    }

    fn lint_opts() -> VerifyOptions {
        VerifyOptions { granularity: Granularity::Block, lint_edges: true }
    }

    #[test]
    fn rect_mode_admits_disjoint_subtile_writes() {
        // Two unordered tasks write disjoint halves of one tile: a block
        // W-W conflict, but element-disjoint.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let b = mk(&mut g, TaskKind::Panel, 0, 1, ());
        let mut access = AccessMap::new(1, 1);
        access.set_geometry(4, 4, 4);
        access.record_write_rect(a, ElemRect::new(0..2, 0..4));
        access.record_write_rect(b, ElemRect::new(2..4, 0..4));
        match verify_graph(&g, &access) {
            Err(SoundnessError::UnorderedConflict {
                kind: ConflictKind::WriteWrite, block: (0, 0), ..
            }) => {}
            other => panic!("block granularity must widen to a conflict, got {other:?}"),
        }
        let report = verify_graph_with(&g, &access, &rect_opts())
            .expect("element-disjoint halves need no ordering");
        assert_eq!(report.conflict_pairs, 0);
        assert_eq!(report.granularity, Granularity::Rect);
    }

    #[test]
    fn rect_mode_detects_overlapping_rects() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let b = mk(&mut g, TaskKind::Panel, 0, 1, ());
        let mut access = AccessMap::new(1, 1);
        access.set_geometry(4, 4, 4);
        access.record_write_rect(a, ElemRect::new(0..3, 0..4));
        access.record_write_rect(b, ElemRect::new(2..4, 0..4));
        match verify_graph_with(&g, &access, &rect_opts()) {
            Err(SoundnessError::UnorderedRectConflict { first, second, kind, rect, .. }) => {
                assert_eq!((first, second), (a, b));
                assert_eq!(kind, ConflictKind::WriteWrite);
                assert_eq!(rect, ElemRect::new(2..3, 0..4));
            }
            other => panic!("expected UnorderedRectConflict, got {other:?}"),
        }
        let mut g2: TaskGraph<()> = TaskGraph::new();
        mk(&mut g2, TaskKind::Panel, 0, 0, ());
        mk(&mut g2, TaskKind::Panel, 0, 1, ());
        g2.add_dep(a, b);
        let report = verify_graph_with(&g2, &access, &rect_opts()).expect("edge orders the pair");
        assert_eq!(report.conflict_pairs, 1);
    }

    #[test]
    fn detects_rect_outside_matrix() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Other, 0, 0, ());
        let mut access = AccessMap::new(1, 1);
        access.set_geometry(4, 4, 4);
        access.record_write_rect(a, ElemRect::new(0..5, 0..1));
        match verify_graph_with(&g, &access, &rect_opts()) {
            Err(SoundnessError::RectOutOfMatrix { task, m, n, .. }) => {
                assert_eq!((task, m, n), (a, 4, 4));
            }
            other => panic!("expected RectOutOfMatrix, got {other:?}"),
        }
    }

    #[test]
    fn lint_flags_unnecessary_edge() {
        // a and b touch disjoint blocks; the edge between them orders
        // nothing.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let b = mk(&mut g, TaskKind::Update, 0, 1, ());
        g.add_dep(a, b);
        let mut access = AccessMap::new(2, 2);
        access.record_write(a, 0..1, 0..1);
        access.record_write(b, 1..2, 1..2);
        let report = verify_graph_with(&g, &access, &lint_opts()).unwrap();
        let lint = report.lint.expect("lint requested");
        assert_eq!(lint.unnecessary_edges.len(), 1);
        assert_eq!((lint.unnecessary_edges[0].from, lint.unnecessary_edges[0].to), (a, b));
        assert!(lint.redundant_edges.is_empty());
        assert_eq!(lint.minimality_findings(), 1);
        assert!(
            lint.reduced_critical_path_flops < lint.critical_path_flops,
            "removing the serializing edge must shorten the critical path"
        );
    }

    #[test]
    fn lint_flags_redundant_edge() {
        // w0 -> r -> w1 plus the direct w0 -> w1: direct edge is justified
        // (W-W conflict) but transitively redundant.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let w0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let r = mk(&mut g, TaskKind::Update, 0, 0, ());
        let w1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        g.add_dep(w0, r);
        g.add_dep(r, w1);
        g.add_dep(w0, w1);
        let mut access = AccessMap::new(2, 2);
        access.record_write(w0, 0..1, 0..1);
        access.record_read(r, 0..1, 0..1);
        access.record_write(w1, 0..1, 0..1);
        let report = verify_graph_with(&g, &access, &lint_opts()).unwrap();
        let lint = report.lint.expect("lint requested");
        assert!(lint.unnecessary_edges.is_empty());
        assert_eq!(lint.redundant_edges.len(), 1);
        assert_eq!((lint.redundant_edges[0].from, lint.redundant_edges[0].to), (w0, w1));
    }

    #[test]
    fn lint_accepts_minimal_tracker_graph() {
        let (g, access) = tracked_graph();
        let report = verify_graph_with(&g, &access, &lint_opts()).unwrap();
        let lint = report.lint.expect("lint requested");
        assert_eq!(lint.minimality_findings(), 0, "tracker output is conflict-minimal");
        assert_eq!(lint.opaque_edges, 0);
        assert_eq!(lint.cold_read_area, 0, "every read follows the panel write");
        // The readers' writes to block column 1 are overwritten by the
        // step-1 panel with no declared read in between: advisory finding.
        assert_eq!(lint.shadowed_writes.len(), 3);
        assert!(lint.shadowed_writes.iter().all(|s| s.area == 1));
    }

    #[test]
    fn lint_skips_opaque_edges() {
        // a -> s -> b where s declares no footprint (side-channel task):
        // the necessity lint must not flag its edges.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let s = mk(&mut g, TaskKind::Other, 0, 0, ());
        let b = mk(&mut g, TaskKind::Panel, 1, 0, ());
        g.add_dep(a, s);
        g.add_dep(s, b);
        let mut access = AccessMap::new(1, 1);
        access.record_write(a, 0..1, 0..1);
        access.record_write(b, 0..1, 0..1);
        let report = verify_graph_with(&g, &access, &lint_opts()).unwrap();
        let lint = report.lint.expect("lint requested");
        assert_eq!(lint.opaque_edges, 2);
        assert!(lint.unnecessary_edges.is_empty());
        assert!(lint.redundant_edges.is_empty());
    }

    #[test]
    fn dataflow_cold_reads_and_shadowed_writes() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let t0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        let t1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        g.add_dep(t0, t1);
        let mut access = AccessMap::new(2, 2);
        access.record_read(t0, 1..2, 0..1); // never written: input load
        access.record_write(t0, 0..1, 0..1);
        access.record_write(t1, 0..1, 0..1); // shadows t0's write
        let report = verify_graph_with(&g, &access, &lint_opts()).unwrap();
        let lint = report.lint.expect("lint requested");
        assert_eq!(lint.cold_read_area, 1);
        assert_eq!(lint.shadowed_writes.len(), 1);
        assert_eq!(lint.shadowed_writes[0].task, t0);
        assert_eq!(lint.shadowed_writes[0].area, 1);
    }

    /// Deterministic generator for the splitting property test.
    struct Lcg(u64);

    impl Lcg {
        fn below(&mut self, n: usize) -> usize {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((self.0 >> 33) % n as u64) as usize
        }
    }

    /// A random tracker-built graph over a 3×3 grid of 4-blocks on a
    /// 12×12 matrix; half the seeds then drop one random edge so the
    /// property also covers rejected graphs.
    fn random_tracked(lcg: &mut Lcg) -> (TaskGraph<()>, AccessMap) {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::with_geometry(4, 12, 12);
        let ntasks = 4 + lcg.below(6);
        for i in 0..ntasks {
            let id = mk(&mut g, TaskKind::Other, 0, i, ());
            for _ in 0..1 + lcg.below(2) {
                let r0 = lcg.below(3);
                let r1 = r0 + 1 + lcg.below(3 - r0);
                let c0 = lcg.below(3);
                let c1 = c0 + 1 + lcg.below(3 - c0);
                if lcg.below(2) == 0 {
                    t.read(&mut g, id, r0..r1, c0..c1);
                } else {
                    t.write(&mut g, id, r0..r1, c0..c1);
                }
            }
        }
        let access = t.into_access_map();
        if lcg.below(2) == 0 {
            let edges: Vec<(TaskId, TaskId)> = (0..g.len())
                .flat_map(|a| g.successors(a).iter().map(move |&b| (a, b)).collect::<Vec<_>>())
                .collect();
            if !edges.is_empty() {
                let (a, b) = edges[lcg.below(edges.len())];
                #[allow(clippy::disallowed_methods)] // property test mutates edges to probe the verifier
                g.remove_dep(a, b);
            }
        }
        (g, access)
    }

    /// Randomly splits a rect into up to four covering pieces.
    fn split_rect(rect: ElemRect, lcg: &mut Lcg) -> Vec<ElemRect> {
        let rmid = rect.row0 + lcg.below(rect.row1 - rect.row0 + 1);
        let cmid = rect.col0 + lcg.below(rect.col1 - rect.col0 + 1);
        [
            ElemRect::new(rect.row0..rmid, rect.col0..cmid),
            ElemRect::new(rect.row0..rmid, cmid..rect.col1),
            ElemRect::new(rmid..rect.row1, rect.col0..cmid),
            ElemRect::new(rmid..rect.row1, cmid..rect.col1),
        ]
        .into_iter()
        .filter(|r| !r.is_empty())
        .collect()
    }

    /// Re-declares every resolved footprint as randomly split covering
    /// element rects.
    fn split_access(access: &AccessMap, ntasks: usize, lcg: &mut Lcg) -> AccessMap {
        let (mb, nb) = access.grid();
        let (b, m, n) = access.resolution_space();
        let mut out = AccessMap::new(mb, nb);
        out.set_geometry(b, m, n);
        for t in 0..ntasks {
            for rect in access.resolved_reads(t) {
                for piece in split_rect(rect, lcg) {
                    out.record_read_rect(t, piece);
                }
            }
            for rect in access.resolved_writes(t) {
                for piece in split_rect(rect, lcg) {
                    out.record_write_rect(t, piece);
                }
            }
        }
        out
    }

    fn cases() -> proptest::test_runner::ProptestConfig {
        proptest::test_runner::ProptestConfig::with_cases(if cfg!(miri) { 8 } else { 192 })
    }

    proptest::proptest! {
        #![proptest_config(cases())]

        #[test]
        fn splitting_block_footprints_preserves_verdict(seed in 0usize..1_000_000) {
            let mut lcg = Lcg(seed as u64);
            let (g, access) = random_tracked(&mut lcg);
            let split = split_access(&access, g.len(), &mut lcg);
            let block_orig = verify_graph(&g, &access).is_ok();
            let rect_orig = verify_graph_with(&g, &access, &rect_opts()).is_ok();
            let rect_split = verify_graph_with(&g, &split, &rect_opts()).is_ok();
            // Splitting block footprints into covering rects must not
            // change the verdict, and whole-block footprints must verify
            // identically at both granularities.
            proptest::prop_assert_eq!(rect_orig, rect_split);
            proptest::prop_assert_eq!(block_orig, rect_orig);
        }
    }
}
