//! Static DAG soundness verifier.
//!
//! [`verify_graph`] proves — before a single task runs — that a task graph
//! plus its declared block footprints ([`AccessMap`]) is safe to execute on
//! a `SharedMatrix`: every pair of tasks whose declared regions conflict
//! (W–W, R–W, or W–R on an overlapping block) must be ordered by a
//! happens-before path in the DAG. It also re-checks structural invariants
//! (forward-only edges, consistent predecessor counts, every task
//! releasable) without trusting the builder, and lints the §III scheduling
//! rule that panel tasks of step `K+1` outrank the trailing updates of step
//! `K` (lookahead of 1).
//!
//! Happens-before is decided with a bitset transitive closure computed in
//! reverse topological order (`reach[t] = ∪ reach[s] ∪ {s}` over successors
//! `s`), `O(E · V/64)` time and `V²/8` bytes; graphs beyond
//! [`CLOSURE_TASK_LIMIT`] tasks fall back to a per-pair pruned DFS.

use crate::footprint::{AccessMap, BlockRegion};
use crate::graph::TaskGraph;
use crate::task::{TaskId, TaskKind, TaskLabel};
use std::collections::{HashMap, HashSet};

/// Above this many tasks the verifier switches from the quadratic-memory
/// transitive closure to per-pair DFS reachability.
pub const CLOSURE_TASK_LIMIT: usize = 1 << 14;

/// How two tasks' declared accesses of one block conflict. The first mode
/// belongs to the earlier task (lower id), the second to the later one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Both tasks write the block.
    WriteWrite,
    /// The earlier task reads, the later writes (anti-dependence).
    ReadWrite,
    /// The earlier task writes, the later reads (true dependence).
    WriteRead,
}

impl core::fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::WriteWrite => "W-W",
            Self::ReadWrite => "R-W",
            Self::WriteRead => "W-R",
        })
    }
}

/// A soundness violation found by [`verify_graph`] or by checked execution
/// mode.
#[derive(Clone, Debug, PartialEq)]
pub enum SoundnessError {
    /// An edge points backwards (or to itself) in topological insertion
    /// order — the graph could cycle.
    BackEdge {
        /// Source of the offending edge.
        from: TaskId,
        /// Target of the offending edge.
        to: TaskId,
    },
    /// A task's stored predecessor count disagrees with the edges — an
    /// executor would release it too early or never.
    InconsistentPreds {
        /// The task with the bad count.
        task: TaskId,
        /// Count stored in the graph.
        declared: usize,
        /// Count implied by the edges.
        counted: usize,
    },
    /// A task can never become ready (dangling: unreachable from the roots
    /// by dependency release).
    Unreleasable {
        /// The dangling task.
        task: TaskId,
        /// Its label.
        label: TaskLabel,
    },
    /// The access map mentions a task id the graph does not contain.
    UnknownTask {
        /// The unknown id.
        task: TaskId,
        /// Number of tasks in the graph.
        tasks: usize,
    },
    /// A declared region lies outside the block grid.
    RegionOutOfGrid {
        /// The declaring task.
        task: TaskId,
        /// Its label.
        label: TaskLabel,
        /// The offending region.
        region: BlockRegion,
        /// Grid rows.
        mb: usize,
        /// Grid columns.
        nb: usize,
    },
    /// Two tasks conflict on a block but no happens-before path orders them
    /// — executing the graph could race.
    UnorderedConflict {
        /// Earlier task (lower id).
        first: TaskId,
        /// Its label.
        first_label: TaskLabel,
        /// Later task (higher id).
        second: TaskId,
        /// Its label.
        second_label: TaskLabel,
        /// How the accesses conflict.
        kind: ConflictKind,
        /// The contested block `(i, j)`.
        block: (usize, usize),
    },
    /// Checked execution observed two concurrently live leases overlapping
    /// (at least one a write). Labels are rendered strings because the
    /// violation comes from the matrix-level shadow registry.
    Race {
        /// Label of the task holding the earlier lease.
        first: String,
        /// Label of the task that took the overlapping lease.
        second: String,
        /// Overlapping element rows `(start, end)`.
        rows: (usize, usize),
        /// Overlapping element columns `(start, end)`.
        cols: (usize, usize),
    },
    /// Checked execution observed a task touching elements outside its
    /// declared footprint.
    UndeclaredAccess {
        /// Label of the offending task.
        task: String,
        /// `true` for a mutable access.
        write: bool,
        /// Accessed element rows `(start, end)`.
        rows: (usize, usize),
        /// Accessed element columns `(start, end)`.
        cols: (usize, usize),
    },
}

impl core::fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BackEdge { from, to } => {
                write!(f, "edge {from} -> {to} violates topological order (possible cycle)")
            }
            Self::InconsistentPreds { task, declared, counted } => write!(
                f,
                "task {task} declares {declared} predecessors but edges imply {counted}"
            ),
            Self::Unreleasable { task, label } => {
                write!(f, "task {task} ({label}) can never become ready")
            }
            Self::UnknownTask { task, tasks } => {
                write!(f, "access map names task {task} but the graph has only {tasks} tasks")
            }
            Self::RegionOutOfGrid { task, label, region, mb, nb } => {
                write!(f, "task {task} ({label}) declares {region} outside the {mb}x{nb} grid")
            }
            Self::UnorderedConflict { first, first_label, second, second_label, kind, block } => {
                write!(
                    f,
                    "{kind} conflict on block ({}, {}) between task {first} ({first_label}) and \
                     task {second} ({second_label}) with no happens-before path",
                    block.0, block.1
                )
            }
            Self::Race { first, second, rows, cols } => write!(
                f,
                "race: tasks {first} and {second} held overlapping leases on elements \
                 rows {}..{} × cols {}..{}",
                rows.0, rows.1, cols.0, cols.1
            ),
            Self::UndeclaredAccess { task, write, rows, cols } => write!(
                f,
                "task {task} {} elements rows {}..{} × cols {}..{} outside its declared footprint",
                if *write { "wrote" } else { "read" },
                rows.0,
                rows.1,
                cols.0,
                cols.1
            ),
        }
    }
}

impl std::error::Error for SoundnessError {}

/// Statistics from a successful [`verify_graph`] run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    /// Tasks in the graph.
    pub tasks: usize,
    /// Dependency edges.
    pub edges: usize,
    /// Declared read/write regions.
    pub declared_regions: usize,
    /// Distinct blocks with at least one declared access.
    pub blocks_touched: usize,
    /// Conflicting task pairs proven ordered.
    pub conflict_pairs: usize,
    /// Lookahead-lint findings (§III priority rule). Informational:
    /// the tiled baselines intentionally schedule without lookahead.
    pub lookahead_warnings: Vec<String>,
}

impl core::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "verified {} tasks, {} edges: {} conflicting pair(s) ordered across {} declared \
             region(s) on {} block(s)",
            self.tasks, self.edges, self.conflict_pairs, self.declared_regions, self.blocks_touched
        )?;
        for w in &self.lookahead_warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

/// Verifies that `graph` with declared footprints `access` is sound to
/// execute on a shared matrix: structurally valid, every task releasable,
/// and every conflicting block access ordered by a happens-before path.
pub fn verify_graph<T>(
    graph: &TaskGraph<T>,
    access: &AccessMap,
) -> Result<VerifyReport, SoundnessError> {
    let n = graph.len();

    // Structure: forward-only edges, consistent predecessor counts. Checked
    // from scratch — the verifier must not trust builder discipline.
    let mut counted = vec![0usize; n];
    let mut edges = 0usize;
    for id in 0..n {
        for &s in graph.successors(id) {
            if s >= n {
                return Err(SoundnessError::UnknownTask { task: s, tasks: n });
            }
            if s <= id {
                return Err(SoundnessError::BackEdge { from: id, to: s });
            }
            counted[s] += 1;
            edges += 1;
        }
    }
    for (id, &c) in counted.iter().enumerate() {
        if c != graph.pred_count(id) {
            return Err(SoundnessError::InconsistentPreds {
                task: id,
                declared: graph.pred_count(id),
                counted: c,
            });
        }
    }

    // Completeness: dependency release (Kahn) must reach every task.
    let mut indeg = counted;
    let mut stack: Vec<TaskId> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut released = 0usize;
    while let Some(id) = stack.pop() {
        released += 1;
        for &s in graph.successors(id) {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                stack.push(s);
            }
        }
    }
    if released < n {
        let task = (0..n).find(|&i| indeg[i] > 0).expect("some task unreleased");
        return Err(SoundnessError::Unreleasable { task, label: graph.meta(task).label });
    }

    // Footprint sanity: known tasks, regions inside the grid.
    let (mb, nb) = access.grid();
    for t in 0..access.tasks() {
        if t >= n {
            if !access.reads(t).is_empty() || !access.writes(t).is_empty() {
                return Err(SoundnessError::UnknownTask { task: t, tasks: n });
            }
            continue;
        }
        for region in access.reads(t).iter().chain(access.writes(t)) {
            if region.rows.end > mb || region.cols.end > nb {
                return Err(SoundnessError::RegionOutOfGrid {
                    task: t,
                    label: graph.meta(t).label,
                    region: region.clone(),
                    mb,
                    nb,
                });
            }
        }
    }

    // Per-block access lists: who touches block (i, j), and how.
    let ntasks = access.tasks().min(n);
    let mut per_block: Vec<Vec<(TaskId, bool)>> = vec![Vec::new(); mb * nb];
    for t in 0..ntasks {
        for (regions, write) in [(access.reads(t), false), (access.writes(t), true)] {
            for region in regions {
                for j in region.cols.clone() {
                    for i in region.rows.clone() {
                        per_block[i + j * mb].push((t, write));
                    }
                }
            }
        }
    }
    let blocks_touched = per_block.iter().filter(|l| !l.is_empty()).count();

    // Happens-before: bitset transitive closure in reverse topological
    // order. reach[id] holds a bit per task reachable from id.
    let words = n.div_ceil(64);
    let use_closure = n <= CLOSURE_TASK_LIMIT;
    let mut reach: Vec<u64> = if use_closure { vec![0u64; n * words] } else { Vec::new() };
    if use_closure {
        for id in (0..n).rev() {
            let (head, tail) = reach.split_at_mut((id + 1) * words);
            let row = &mut head[id * words..];
            for &s in graph.successors(id) {
                row[s / 64] |= 1u64 << (s % 64);
                let srow = &tail[(s - id - 1) * words..(s - id) * words];
                for (d, &w) in row.iter_mut().zip(srow) {
                    *d |= w;
                }
            }
        }
    }
    let ordered = |a: TaskId, b: TaskId| -> bool {
        debug_assert!(a < b);
        if use_closure {
            reach[a * words + b / 64] & (1u64 << (b % 64)) != 0
        } else {
            dfs_reaches(graph, a, b)
        }
    };

    // Every conflicting pair must be ordered.
    let mut seen_pairs: HashSet<(TaskId, TaskId)> = HashSet::new();
    for (bidx, list) in per_block.iter().enumerate() {
        for x in 0..list.len() {
            for y in x + 1..list.len() {
                let (t1, w1) = list[x];
                let (t2, w2) = list[y];
                if t1 == t2 || (!w1 && !w2) {
                    continue;
                }
                let (a, wa, b, wb) = if t1 < t2 { (t1, w1, t2, w2) } else { (t2, w2, t1, w1) };
                if !seen_pairs.insert((a, b)) {
                    continue;
                }
                if !ordered(a, b) {
                    let kind = match (wa, wb) {
                        (true, true) => ConflictKind::WriteWrite,
                        (false, true) => ConflictKind::ReadWrite,
                        (true, false) => ConflictKind::WriteRead,
                        (false, false) => unreachable!("read-read pairs are skipped"),
                    };
                    return Err(SoundnessError::UnorderedConflict {
                        first: a,
                        first_label: graph.meta(a).label,
                        second: b,
                        second_label: graph.meta(b).label,
                        kind,
                        block: (bidx % mb, bidx / mb),
                    });
                }
            }
        }
    }

    Ok(VerifyReport {
        tasks: n,
        edges,
        declared_regions: access.region_count(),
        blocks_touched,
        conflict_pairs: seen_pairs.len(),
        lookahead_warnings: lookahead_lint(graph),
    })
}

/// Pruned DFS reachability `a → b` (only ids in `(a, b]` can be on a path,
/// because edges go forward in id order).
fn dfs_reaches<T>(graph: &TaskGraph<T>, a: TaskId, b: TaskId) -> bool {
    let mut visited = HashSet::new();
    let mut stack = vec![a];
    while let Some(id) = stack.pop() {
        for &s in graph.successors(id) {
            if s == b {
                return true;
            }
            if s < b && visited.insert(s) {
                stack.push(s);
            }
        }
    }
    false
}

/// Lints the paper's §III lookahead rule: the panel tasks of step `K+1`
/// should outrank the *trailing* (non-lookahead, block column ≠ `K+1`)
/// updates of step `K`, so panels start as soon as their column is ready.
fn lookahead_lint<T>(graph: &TaskGraph<T>) -> Vec<String> {
    let mut min_panel: HashMap<usize, i64> = HashMap::new();
    let mut max_trailing: HashMap<usize, i64> = HashMap::new();
    for id in 0..graph.len() {
        let m = graph.meta(id);
        match m.label.kind {
            TaskKind::Panel => {
                min_panel
                    .entry(m.label.step)
                    .and_modify(|p| *p = (*p).min(m.priority))
                    .or_insert(m.priority);
            }
            TaskKind::Update if m.label.j != m.label.step + 1 => {
                max_trailing
                    .entry(m.label.step)
                    .and_modify(|p| *p = (*p).max(m.priority))
                    .or_insert(m.priority);
            }
            _ => {}
        }
    }
    let mut warnings: Vec<String> = max_trailing
        .iter()
        .filter_map(|(&step, &maxu)| {
            let &minp = min_panel.get(&(step + 1))?;
            (minp <= maxu).then(|| {
                format!(
                    "panel tasks of step {} (min priority {minp}) do not outrank the trailing \
                     updates of step {step} (max priority {maxu}); lookahead-of-1 is not in effect",
                    step + 1
                )
            })
        })
        .collect();
    warnings.sort();
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockdeps::BlockTracker;
    use crate::task::{TaskMeta, TaskKind};

    fn mk<T>(g: &mut TaskGraph<T>, kind: TaskKind, step: usize, i: usize, payload: T) -> TaskId {
        g.add_task(TaskMeta::new(TaskLabel::new(kind, step, i, 0), 1.0), payload)
    }

    /// Write-chain then fan-out reads then barrier write, via the tracker.
    fn tracked_graph() -> (TaskGraph<()>, AccessMap) {
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(4, 4);
        let w0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        t.write(&mut g, w0, 0..4, 0..1);
        for i in 0..3 {
            let r = mk(&mut g, TaskKind::Update, 0, i, ());
            t.read(&mut g, r, 0..4, 0..1);
            t.write(&mut g, r, i..i + 1, 1..2);
        }
        let w1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        t.write(&mut g, w1, 0..4, 0..2);
        (g, t.into_access_map())
    }

    #[test]
    fn accepts_tracker_built_graph() {
        let (g, access) = tracked_graph();
        let report = verify_graph(&g, &access).expect("tracker-built graph is sound");
        assert_eq!(report.tasks, 5);
        assert!(report.conflict_pairs >= 7, "got {}", report.conflict_pairs);
        assert!(report.blocks_touched >= 5);
    }

    #[test]
    fn detects_removed_edge_as_unordered_conflict() {
        let (mut g, access) = tracked_graph();
        // Drop the RAW edge panel -> first reader; no other path orders them.
        assert!(g.remove_dep(0, 1));
        let err = verify_graph(&g, &access).expect_err("missing edge must be caught");
        match err {
            SoundnessError::UnorderedConflict { first, second, first_label, second_label, .. } => {
                assert_eq!((first, second), (0, 1));
                assert_eq!(first_label.kind, TaskKind::Panel);
                assert_eq!(second_label.kind, TaskKind::Update);
            }
            other => panic!("expected UnorderedConflict, got {other:?}"),
        }
    }

    #[test]
    fn redundant_edge_removal_is_accepted() {
        // w0 -> r -> w1 and w0 -> w1: dropping the direct w0 -> w1 edge keeps
        // the pair ordered through r.
        let mut g = TaskGraph::new();
        let mut t = BlockTracker::new(2, 2);
        let w0 = mk(&mut g, TaskKind::Panel, 0, 0, ());
        t.write(&mut g, w0, 0..1, 0..1);
        let r = mk(&mut g, TaskKind::Update, 0, 0, ());
        t.read(&mut g, r, 0..1, 0..1);
        let w1 = mk(&mut g, TaskKind::Panel, 1, 0, ());
        t.write(&mut g, w1, 0..1, 0..1);
        let access = t.into_access_map();
        assert!(g.remove_dep(w0, w1), "tracker adds the WAW edge");
        verify_graph(&g, &access).expect("transitive path w0 -> r -> w1 still orders the pair");
    }

    #[test]
    fn detects_back_edge() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        mk(&mut g, TaskKind::Other, 0, 0, ());
        mk(&mut g, TaskKind::Other, 0, 1, ());
        // Forge a backward edge behind the API's back.
        g.succs[1].push(0);
        g.npreds[0] += 1;
        assert_eq!(
            verify_graph(&g, &AccessMap::new(1, 1)),
            Err(SoundnessError::BackEdge { from: 1, to: 0 })
        );
    }

    #[test]
    fn detects_inconsistent_pred_counts() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        mk(&mut g, TaskKind::Other, 0, 0, ());
        let b = mk(&mut g, TaskKind::Other, 0, 1, ());
        g.npreds[b] = 1; // no edge backs this up
        match verify_graph(&g, &AccessMap::new(1, 1)) {
            Err(SoundnessError::InconsistentPreds { task, declared, counted }) => {
                assert_eq!((task, declared, counted), (b, 1, 0));
            }
            other => panic!("expected InconsistentPreds, got {other:?}"),
        }
    }

    #[test]
    fn detects_region_outside_grid() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        let a = mk(&mut g, TaskKind::Other, 0, 0, ());
        let mut access = AccessMap::new(2, 2);
        access.record_write(a, 0..3, 0..1);
        match verify_graph(&g, &access) {
            Err(SoundnessError::RegionOutOfGrid { task, mb, nb, .. }) => {
                assert_eq!((task, mb, nb), (a, 2, 2));
            }
            other => panic!("expected RegionOutOfGrid, got {other:?}"),
        }
    }

    #[test]
    fn detects_unknown_task_in_access_map() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        mk(&mut g, TaskKind::Other, 0, 0, ());
        let mut access = AccessMap::new(2, 2);
        access.record_write(5, 0..1, 0..1);
        assert_eq!(
            verify_graph(&g, &access),
            Err(SoundnessError::UnknownTask { task: 5, tasks: 1 })
        );
    }

    #[test]
    fn lookahead_lint_flags_priority_inversion() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        // Step-0 trailing update (j=2) outranks the step-1 panel: warn.
        let upd = TaskMeta::new(TaskLabel::new(TaskKind::Update, 0, 0, 2), 1.0)
            .with_priority(1100);
        let pan = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 1, 0, 0), 1.0)
            .with_priority(900);
        let u = g.add_task(upd, ());
        let p = g.add_task(pan, ());
        g.add_dep(u, p);
        let report = verify_graph(&g, &AccessMap::new(1, 1)).unwrap();
        assert_eq!(report.lookahead_warnings.len(), 1);
        assert!(report.lookahead_warnings[0].contains("step 1"));
    }

    #[test]
    fn lookahead_column_update_may_outrank_panel() {
        let mut g: TaskGraph<()> = TaskGraph::new();
        // The update of block column K+1 is *supposed* to outrank the panel
        // of step K+1 (it produces its input): no warning.
        let upd = TaskMeta::new(TaskLabel::new(TaskKind::Update, 0, 0, 1), 1.0)
            .with_priority(1100);
        let pan = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 1, 0, 0), 1.0)
            .with_priority(900);
        let u = g.add_task(upd, ());
        let p = g.add_task(pan, ());
        g.add_dep(u, p);
        let report = verify_graph(&g, &AccessMap::new(1, 1)).unwrap();
        assert!(report.lookahead_warnings.is_empty());
    }

    #[test]
    fn dfs_fallback_agrees_with_closure() {
        let (g, access) = tracked_graph();
        // Exercise the DFS path directly on each conflicting pair.
        assert!(dfs_reaches(&g, 0, 1));
        assert!(dfs_reaches(&g, 0, 4));
        assert!(!dfs_reaches(&g, 1, 2));
        let report = verify_graph(&g, &access).unwrap();
        assert!(report.conflict_pairs > 0);
    }
}
