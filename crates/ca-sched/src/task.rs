//! Task identity and metadata.
//!
//! Each task in a factorization DAG carries a [`TaskLabel`] naming what it is
//! (the paper's P/L/U/S vocabulary, Figure 1), a scheduling priority, and a
//! cost estimate in flops used by the multicore simulator.

/// Index of a task within its [`crate::TaskGraph`].
pub type TaskId = usize;

/// The kind of work a task performs, following the paper's naming:
/// `P` = panel/tournament step, `L` = block column of L, `U` = block row of
/// U (incl. pivoting to the right), `S` = trailing-matrix update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum TaskKind {
    /// Panel factorization step (TSLU/TSQR leaf or reduction-tree node).
    Panel,
    /// Computation of one block of the current L block column (`dtrsm`).
    LBlock,
    /// Permutation + one block of the current U block row.
    URow,
    /// Update of one trailing-matrix block (`dgemm` / `dlarfb`).
    Update,
    /// Row interchanges applied to a block column.
    Swap,
    /// Anything else (baseline algorithms use this for their own kernels).
    Other,
}

impl TaskKind {
    /// One-letter code used in traces (matches the paper's figures).
    pub fn code(self) -> char {
        match self {
            TaskKind::Panel => 'P',
            TaskKind::LBlock => 'L',
            TaskKind::URow => 'U',
            TaskKind::Update => 'S',
            TaskKind::Swap => 'W',
            TaskKind::Other => 'O',
        }
    }
}

/// Human-readable identity of a task: kind plus (step, i, j) coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TaskLabel {
    /// What the task does.
    pub kind: TaskKind,
    /// Which panel iteration (`K` in the paper's algorithms) it belongs to.
    pub step: usize,
    /// Row-block coordinate (leaf index / tree node index), if meaningful.
    pub i: usize,
    /// Column-block coordinate, if meaningful.
    pub j: usize,
}

impl TaskLabel {
    /// Convenience constructor.
    pub fn new(kind: TaskKind, step: usize, i: usize, j: usize) -> Self {
        Self { kind, step, i, j }
    }
}

impl core::fmt::Display for TaskLabel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}[{},{},{}]", self.kind.code(), self.step, self.i, self.j)
    }
}

/// The kernel a task's flops run through — the simulator's cost model maps
/// each class to a measured throughput (BLAS2 panels are far slower per flop
/// than BLAS3 updates, which is the effect the paper's evaluation hinges on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[derive(serde::Serialize, serde::Deserialize)]
pub enum KernelClass {
    /// Matrix-matrix multiply (`dgemm`).
    Gemm,
    /// Triangular solve with multiple RHS (`dtrsm`).
    Trsm,
    /// Compact-WY block reflector application (`dlarfb`).
    Larfb,
    /// BLAS2 Gaussian elimination panel (`dgetf2`).
    LuBlas2,
    /// Recursive Gaussian elimination panel (`rgetf2`).
    LuRecursive,
    /// BLAS2 Householder panel (`dgeqr2`).
    QrBlas2,
    /// Recursive Householder panel (`dgeqr3`).
    QrRecursive,
    /// Row interchanges / copies (memory bound).
    Memory,
    /// Unclassified.
    Other,
}

/// Scheduling metadata attached to each task.
#[derive(Clone, Copy, Debug)]
pub struct TaskMeta {
    /// Identity for tracing and debugging.
    pub label: TaskLabel,
    /// Scheduling priority; higher runs first among ready tasks. The
    /// lookahead-of-1 rule of the paper is expressed through this field by
    /// the DAG builders.
    pub priority: i64,
    /// Estimated cost in flops (the simulator divides by a per-class
    /// throughput to get seconds; the threaded executor ignores it).
    pub flops: f64,
    /// Estimated memory traffic in bytes (reads + writes of matrix data).
    /// Communication-avoiding algorithms are about minimizing this; the
    /// roofline cost model takes `max(flops/throughput, bytes/bandwidth)`.
    /// `0.0` means "derive from flops" (compute-bound task).
    pub bytes: f64,
    /// Which kernel performs the flops.
    pub class: KernelClass,
}

impl TaskMeta {
    /// Metadata with default priority 0 and kernel class `Other`.
    pub fn new(label: TaskLabel, flops: f64) -> Self {
        Self { label, priority: 0, flops, bytes: 0.0, class: KernelClass::Other }
    }

    /// Sets the memory-traffic estimate (builder style).
    pub fn with_bytes(mut self, bytes: f64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the kernel class (builder style).
    pub fn with_class(mut self, class: KernelClass) -> Self {
        self.class = class;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_display_is_compact() {
        let l = TaskLabel::new(TaskKind::Update, 2, 1, 3);
        assert_eq!(l.to_string(), "S[2,1,3]");
        assert_eq!(TaskKind::Panel.code(), 'P');
    }

    #[test]
    fn meta_builder() {
        let m = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 0, 0, 0), 100.0).with_priority(5);
        assert_eq!(m.priority, 5);
        assert_eq!(m.flops, 100.0);
    }
}
