//! Execution timelines and Gantt-style rendering.
//!
//! Both the threaded executor and the multicore simulator produce a
//! [`Timeline`]; [`ascii_gantt`] renders it the way the paper's Figures 2–4
//! show executions (one lane per core, colored by task kind — here letters).

use crate::footprint::AccessMap;
use crate::task::{TaskId, TaskLabel, TaskKind};
use ca_matrix::ElemRect;

/// One executed task occurrence on one worker.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// Task id in the source graph.
    pub task: TaskId,
    /// Task identity (kind, step, coordinates).
    pub label: TaskLabel,
    /// Start time in seconds from the beginning of the execution.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// A complete execution record: one span list per worker.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    /// Per-worker sequences of executed spans, ordered by start time.
    pub lanes: Vec<Vec<Span>>,
    /// Total wall time (max span end).
    pub makespan: f64,
}

impl Timeline {
    /// Creates an empty timeline with `nworkers` lanes.
    pub fn new(nworkers: usize) -> Self {
        Self { lanes: vec![Vec::new(); nworkers], makespan: 0.0 }
    }

    /// Number of workers.
    pub fn nworkers(&self) -> usize {
        self.lanes.len()
    }

    /// Total busy time across workers.
    pub fn busy_time(&self) -> f64 {
        self.lanes.iter().flatten().map(|s| s.end - s.start).sum()
    }

    /// Fraction of worker-time spent busy, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 || self.lanes.is_empty() {
            return 0.0;
        }
        self.busy_time() / (self.makespan * self.lanes.len() as f64)
    }

    /// Busy time broken down by task kind, as `(kind, seconds)` pairs in a
    /// fixed order (P, L, U, S, W, O).
    pub fn busy_by_kind(&self) -> Vec<(TaskKind, f64)> {
        let kinds = [
            TaskKind::Panel,
            TaskKind::LBlock,
            TaskKind::URow,
            TaskKind::Update,
            TaskKind::Swap,
            TaskKind::Other,
        ];
        kinds
            .iter()
            .map(|&k| {
                let t = self
                    .lanes
                    .iter()
                    .flatten()
                    .filter(|s| s.label.kind == k)
                    .map(|s| s.end - s.start)
                    .sum();
                (k, t)
            })
            .collect()
    }

    /// Checks internal consistency: spans within a lane do not overlap and
    /// are sorted; `makespan` covers every span. Returns the first violation
    /// instead of aborting, so library callers (and the profiler) can report
    /// malformed timelines as errors.
    pub fn check(&self) -> Result<(), TimelineError> {
        for (lane, spans) in self.lanes.iter().enumerate() {
            let mut prev_end = 0.0f64;
            for (index, s) in spans.iter().enumerate() {
                if s.end < s.start {
                    return Err(TimelineError::NegativeSpan { lane, index });
                }
                if s.start < prev_end - 1e-12 {
                    return Err(TimelineError::OverlappingSpans { lane, index });
                }
                if s.end > self.makespan + 1e-9 {
                    return Err(TimelineError::BeyondMakespan { lane, index });
                }
                prev_end = s.end;
            }
        }
        Ok(())
    }

    /// Panicking wrapper around [`Timeline::check`] for tests and asserts.
    ///
    /// # Panics
    /// On the first inconsistency found.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Post-hoc race check over a recorded execution: no two spans on
    /// *different* workers whose tasks declare overlapping write rects may
    /// overlap in time. Footprints come from `access` (resolved to element
    /// coordinates); time overlap must be strictly positive, so abutting
    /// spans are fine. Same-lane overlap is [`Timeline::check`]'s job.
    pub fn check_write_exclusion(&self, access: &AccessMap) -> Result<(), TimelineError> {
        let mut spans: Vec<(usize, &Span)> = self
            .lanes
            .iter()
            .enumerate()
            .flat_map(|(lane, l)| l.iter().map(move |s| (lane, s)))
            .collect();
        spans.sort_by(|a, b| a.1.start.total_cmp(&b.1.start));
        let mut writes: Vec<Option<Vec<ElemRect>>> = Vec::new();
        let mut writes_of = |t: TaskId| -> Vec<ElemRect> {
            if t >= writes.len() {
                writes.resize(t + 1, None);
            }
            writes[t].get_or_insert_with(|| access.resolved_writes(t)).clone()
        };
        // Sweep by start time, keeping the spans still live.
        let mut active: Vec<(usize, &Span)> = Vec::new();
        for (lane, s) in spans {
            active.retain(|(_, a)| a.end > s.start);
            let sw = writes_of(s.task);
            if !sw.is_empty() {
                for &(alane, a) in &active {
                    if alane == lane || s.end <= a.start {
                        continue;
                    }
                    for ra in writes_of(a.task) {
                        for rb in &sw {
                            if let Some(rect) = ra.intersection(rb) {
                                return Err(TimelineError::ConcurrentWrites {
                                    first: a.task,
                                    second: s.task,
                                    rect,
                                });
                            }
                        }
                    }
                }
            }
            active.push((lane, s));
        }
        Ok(())
    }
}

/// A structural inconsistency in a [`Timeline`], reported by
/// [`Timeline::check`]. All variants carry the lane index and the index of
/// the offending span within that lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimelineError {
    /// A span starts before the previous span in its lane ended (or the
    /// lane is not sorted by start time).
    OverlappingSpans {
        /// Worker lane containing the violation.
        lane: usize,
        /// Index of the offending span within the lane.
        index: usize,
    },
    /// A span ends before it starts.
    NegativeSpan {
        /// Worker lane containing the violation.
        lane: usize,
        /// Index of the offending span within the lane.
        index: usize,
    },
    /// A span ends after the recorded makespan.
    BeyondMakespan {
        /// Worker lane containing the violation.
        lane: usize,
        /// Index of the offending span within the lane.
        index: usize,
    },
    /// Two tasks with overlapping declared write rects ran at the same time
    /// on different workers (reported by
    /// [`Timeline::check_write_exclusion`]).
    ConcurrentWrites {
        /// Task of the earlier-starting span.
        first: TaskId,
        /// Task of the later-starting span.
        second: TaskId,
        /// The overlapping part of their write footprints.
        rect: ElemRect,
    },
}

impl core::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TimelineError::OverlappingSpans { lane, index } => {
                write!(f, "overlapping spans in lane {lane} at span {index}")
            }
            TimelineError::NegativeSpan { lane, index } => {
                write!(f, "negative-length span in lane {lane} at span {index}")
            }
            TimelineError::BeyondMakespan { lane, index } => {
                write!(f, "span beyond makespan in lane {lane} at span {index}")
            }
            TimelineError::ConcurrentWrites { first, second, rect } => {
                write!(
                    f,
                    "tasks {first} and {second} write {rect} concurrently on different workers"
                )
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// Renders the timeline as an ASCII Gantt chart, one row per worker, `width`
/// character cells across; each cell shows the kind-letter of the task
/// occupying that instant ('.' = idle). Matches the reading of the paper's
/// Figures 3–4: red panel bars → `P`, L-computation → `L`, updates → `S`.
pub fn ascii_gantt(tl: &Timeline, width: usize) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    if tl.makespan <= 0.0 || width == 0 {
        return out;
    }
    let dt = tl.makespan / width as f64;
    for (w, lane) in tl.lanes.iter().enumerate() {
        let mut row = vec!['.'; width];
        for s in lane {
            let c0 = ((s.start / dt).floor() as usize).min(width - 1);
            let c1 = ((s.end / dt).ceil() as usize).clamp(c0 + 1, width);
            for cell in &mut row[c0..c1] {
                *cell = s.label.kind.code();
            }
        }
        let _ = writeln!(out, "core {w:>2} |{}|", row.into_iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "makespan {:.4}s  utilization {:.1}%",
        tl.makespan,
        tl.utilization() * 100.0
    );
    out
}

/// Chrome-tracing category string for a task kind.
pub(crate) fn trace_category(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Panel => "panel",
        TaskKind::LBlock => "l-block",
        TaskKind::URow => "u-row",
        TaskKind::Update => "update",
        TaskKind::Swap => "swap",
        TaskKind::Other => "other",
    }
}

/// Process id used for all emitted trace events.
pub(crate) const TRACE_PID: u32 = 1;

/// Metadata events labelling the process and the worker lanes ("core N") so
/// Perfetto / `chrome://tracing` name the tracks correctly.
pub(crate) fn trace_metadata_events(nworkers: usize, process: &str) -> Vec<serde_json::Value> {
    let mut events = Vec::with_capacity(2 * nworkers + 1);
    events.push(serde_json::json!({
        "name": "process_name", "ph": "M", "pid": TRACE_PID,
        "args": serde_json::json!({"name": process}),
    }));
    for tid in 0..nworkers {
        events.push(serde_json::json!({
            "name": "thread_name", "ph": "M", "pid": TRACE_PID, "tid": tid,
            "args": serde_json::json!({"name": format!("core {tid}")}),
        }));
        events.push(serde_json::json!({
            "name": "thread_sort_index", "ph": "M", "pid": TRACE_PID, "tid": tid,
            "args": serde_json::json!({"sort_index": tid}),
        }));
    }
    events
}

/// The complete-span (`ph: "X"`) events of a timeline, in microseconds.
pub(crate) fn trace_span_events(tl: &Timeline) -> Vec<serde_json::Value> {
    let mut events = Vec::new();
    for (tid, lane) in tl.lanes.iter().enumerate() {
        for s in lane {
            events.push(serde_json::json!({
                "name": s.label.to_string(),
                "cat": trace_category(s.label.kind),
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": (s.end - s.start) * 1e6,
                "pid": TRACE_PID,
                "tid": tid,
            }));
        }
    }
    events
}

/// Serializes the timeline in Chrome tracing ("trace event") JSON format —
/// load it at `chrome://tracing` or in Perfetto for an interactive view of
/// the schedule. Includes `process_name`/`thread_name` metadata records so
/// lanes are labelled "core N"; [`crate::Profile::chrome_trace`] extends
/// this format with flow events and counter tracks.
pub fn chrome_trace_json(tl: &Timeline) -> String {
    let mut events = trace_metadata_events(tl.nworkers(), "ca-factor");
    events.extend(trace_span_events(tl));
    serde_json::to_string(&events).expect("serializable")
}

/// Like [`chrome_trace_json`], with additional instant events (`ph: "i"`)
/// interleaved at the given `(seconds, description)` marks — used by the
/// serving layer to mark recovery actions (job retries, probe hits) on the
/// execution timeline.
pub fn chrome_trace_json_with_marks(tl: &Timeline, marks: &[(f64, String)]) -> String {
    let mut events = trace_metadata_events(tl.nworkers(), "ca-factor");
    events.extend(trace_span_events(tl));
    for (ts, name) in marks {
        events.push(serde_json::json!({
            "name": name.as_str(),
            "cat": "recovery",
            "ph": "i",
            "s": "g",
            "ts": ts * 1e6,
            "pid": TRACE_PID,
        }));
    }
    serde_json::to_string(&events).expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span { task: 0, label: TaskLabel::new(kind, 0, 0, 0), start, end }
    }

    #[test]
    fn utilization_of_fully_busy_timeline_is_one() {
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.0, 1.0));
        tl.makespan = 1.0;
        tl.validate();
        assert!((tl.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_idle_timeline() {
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 2.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.0, 1.0));
        tl.makespan = 2.0;
        assert!((tl.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gantt_marks_idle_and_busy_cells() {
        let mut tl = Timeline::new(1);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 0.5));
        tl.makespan = 1.0;
        let g = ascii_gantt(&tl, 10);
        assert!(g.contains("PPPPP"));
        assert!(g.contains("....."));
    }

    #[test]
    fn busy_by_kind_partitions_time() {
        let mut tl = Timeline::new(1);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[0].push(span(TaskKind::Update, 1.0, 3.0));
        tl.makespan = 3.0;
        let by = tl.busy_by_kind();
        let p: f64 = by.iter().find(|(k, _)| *k == TaskKind::Panel).unwrap().1;
        let s: f64 = by.iter().find(|(k, _)| *k == TaskKind::Update).unwrap().1;
        assert_eq!(p, 1.0);
        assert_eq!(s, 2.0);
        assert_eq!(tl.busy_time(), 3.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_spans_and_metadata() {
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.5, 2.0));
        tl.makespan = 2.0;
        let json = chrome_trace_json(&tl);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        let spans: Vec<_> = arr.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1]["tid"], 1);
        assert_eq!(spans[1]["dur"], 1.5e6);
        // Metadata: one process_name plus thread_name/sort per lane.
        let metas: Vec<_> = arr.iter().filter(|e| e["ph"] == "M").collect();
        assert!(metas.iter().any(|e| e["name"] == "process_name"));
        assert!(metas
            .iter()
            .any(|e| e["name"] == "thread_name" && e["args"]["name"] == "core 1"));
    }

    #[test]
    fn write_exclusion_flags_concurrent_writers_on_different_lanes() {
        let mut access = AccessMap::new(2, 2);
        access.record_write(0, 0..1, 0..1);
        access.record_write(1, 0..1, 0..1); // same block as task 0
        access.record_write(2, 1..2, 1..2); // disjoint

        // Tasks 0 and 1 overlap in time on different lanes: race.
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(Span { task: 0, label: TaskLabel::new(TaskKind::Panel, 0, 0, 0), start: 0.0, end: 1.0 });
        tl.lanes[1].push(Span { task: 1, label: TaskLabel::new(TaskKind::Panel, 0, 1, 0), start: 0.5, end: 1.5 });
        tl.makespan = 1.5;
        match tl.check_write_exclusion(&access) {
            Err(TimelineError::ConcurrentWrites { first, second, rect }) => {
                assert_eq!((first, second), (0, 1));
                assert_eq!(rect, ElemRect::new(0..1, 0..1));
            }
            other => panic!("expected ConcurrentWrites, got {other:?}"),
        }

        // Serialized in time: fine, even with identical footprints.
        tl.lanes[1][0].start = 1.0;
        tl.lanes[1][0].end = 2.0;
        tl.makespan = 2.0;
        assert_eq!(tl.check_write_exclusion(&access), Ok(()));

        // Concurrent but disjoint write rects: fine.
        let mut tl2 = Timeline::new(2);
        tl2.lanes[0].push(Span { task: 0, label: TaskLabel::new(TaskKind::Panel, 0, 0, 0), start: 0.0, end: 1.0 });
        tl2.lanes[1].push(Span { task: 2, label: TaskLabel::new(TaskKind::Update, 0, 0, 0), start: 0.0, end: 1.0 });
        tl2.makespan = 1.0;
        assert_eq!(tl2.check_write_exclusion(&access), Ok(()));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn validate_catches_overlap() {
        let mut tl = Timeline::new(1);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[0].push(span(TaskKind::Update, 0.5, 2.0));
        tl.makespan = 2.0;
        tl.validate();
    }

    #[test]
    fn check_reports_instead_of_panicking() {
        let mut tl = Timeline::new(2);
        tl.lanes[1].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.5, 2.0));
        tl.makespan = 2.0;
        assert_eq!(tl.check(), Err(TimelineError::OverlappingSpans { lane: 1, index: 1 }));
        tl.lanes[1].truncate(1);
        assert_eq!(tl.check(), Ok(()));
        tl.lanes[0].push(span(TaskKind::Other, 1.0, 3.0));
        assert_eq!(tl.check(), Err(TimelineError::BeyondMakespan { lane: 0, index: 0 }));
        tl.lanes[0][0] = span(TaskKind::Other, 1.0, 0.5);
        assert_eq!(tl.check(), Err(TimelineError::NegativeSpan { lane: 0, index: 0 }));
    }
}
