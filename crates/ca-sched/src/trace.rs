//! Execution timelines and Gantt-style rendering.
//!
//! Both the threaded executor and the multicore simulator produce a
//! [`Timeline`]; [`ascii_gantt`] renders it the way the paper's Figures 2–4
//! show executions (one lane per core, colored by task kind — here letters).

use crate::task::{TaskId, TaskLabel, TaskKind};

/// One executed task occurrence on one worker.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// Task id in the source graph.
    pub task: TaskId,
    /// Task identity (kind, step, coordinates).
    pub label: TaskLabel,
    /// Start time in seconds from the beginning of the execution.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// A complete execution record: one span list per worker.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Timeline {
    /// Per-worker sequences of executed spans, ordered by start time.
    pub lanes: Vec<Vec<Span>>,
    /// Total wall time (max span end).
    pub makespan: f64,
}

impl Timeline {
    /// Creates an empty timeline with `nworkers` lanes.
    pub fn new(nworkers: usize) -> Self {
        Self { lanes: vec![Vec::new(); nworkers], makespan: 0.0 }
    }

    /// Number of workers.
    pub fn nworkers(&self) -> usize {
        self.lanes.len()
    }

    /// Total busy time across workers.
    pub fn busy_time(&self) -> f64 {
        self.lanes.iter().flatten().map(|s| s.end - s.start).sum()
    }

    /// Fraction of worker-time spent busy, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 || self.lanes.is_empty() {
            return 0.0;
        }
        self.busy_time() / (self.makespan * self.lanes.len() as f64)
    }

    /// Busy time broken down by task kind, as `(kind, seconds)` pairs in a
    /// fixed order (P, L, U, S, W, O).
    pub fn busy_by_kind(&self) -> Vec<(TaskKind, f64)> {
        let kinds = [
            TaskKind::Panel,
            TaskKind::LBlock,
            TaskKind::URow,
            TaskKind::Update,
            TaskKind::Swap,
            TaskKind::Other,
        ];
        kinds
            .iter()
            .map(|&k| {
                let t = self
                    .lanes
                    .iter()
                    .flatten()
                    .filter(|s| s.label.kind == k)
                    .map(|s| s.end - s.start)
                    .sum();
                (k, t)
            })
            .collect()
    }

    /// Checks internal consistency: spans within a lane do not overlap and
    /// are sorted; `makespan` covers every span.
    pub fn validate(&self) {
        for lane in &self.lanes {
            let mut prev_end = 0.0f64;
            for s in lane {
                assert!(s.start >= prev_end - 1e-12, "overlapping spans in a lane");
                assert!(s.end >= s.start, "negative-length span");
                assert!(s.end <= self.makespan + 1e-9, "span beyond makespan");
                prev_end = s.end;
            }
        }
    }
}

/// Renders the timeline as an ASCII Gantt chart, one row per worker, `width`
/// character cells across; each cell shows the kind-letter of the task
/// occupying that instant ('.' = idle). Matches the reading of the paper's
/// Figures 3–4: red panel bars → `P`, L-computation → `L`, updates → `S`.
pub fn ascii_gantt(tl: &Timeline, width: usize) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    if tl.makespan <= 0.0 || width == 0 {
        return out;
    }
    let dt = tl.makespan / width as f64;
    for (w, lane) in tl.lanes.iter().enumerate() {
        let mut row = vec!['.'; width];
        for s in lane {
            let c0 = ((s.start / dt).floor() as usize).min(width - 1);
            let c1 = ((s.end / dt).ceil() as usize).clamp(c0 + 1, width);
            for cell in &mut row[c0..c1] {
                *cell = s.label.kind.code();
            }
        }
        let _ = writeln!(out, "core {w:>2} |{}|", row.into_iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "makespan {:.4}s  utilization {:.1}%",
        tl.makespan,
        tl.utilization() * 100.0
    );
    out
}

/// Serializes the timeline in Chrome tracing ("trace event") JSON format —
/// load it at `chrome://tracing` or in Perfetto for an interactive view of
/// the schedule.
pub fn chrome_trace_json(tl: &Timeline) -> String {
    #[derive(serde::Serialize)]
    struct Event<'a> {
        name: String,
        cat: &'a str,
        ph: &'a str,
        ts: f64,
        dur: f64,
        pid: u32,
        tid: usize,
    }
    let mut events = Vec::new();
    for (tid, lane) in tl.lanes.iter().enumerate() {
        for s in lane {
            events.push(Event {
                name: s.label.to_string(),
                cat: match s.label.kind {
                    TaskKind::Panel => "panel",
                    TaskKind::LBlock => "l-block",
                    TaskKind::URow => "u-row",
                    TaskKind::Update => "update",
                    TaskKind::Swap => "swap",
                    TaskKind::Other => "other",
                },
                ph: "X",
                ts: s.start * 1e6,
                dur: (s.end - s.start) * 1e6,
                pid: 0,
                tid,
            });
        }
    }
    serde_json::to_string(&events).expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span { task: 0, label: TaskLabel::new(kind, 0, 0, 0), start, end }
    }

    #[test]
    fn utilization_of_fully_busy_timeline_is_one() {
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.0, 1.0));
        tl.makespan = 1.0;
        tl.validate();
        assert!((tl.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_idle_timeline() {
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 2.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.0, 1.0));
        tl.makespan = 2.0;
        assert!((tl.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn gantt_marks_idle_and_busy_cells() {
        let mut tl = Timeline::new(1);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 0.5));
        tl.makespan = 1.0;
        let g = ascii_gantt(&tl, 10);
        assert!(g.contains("PPPPP"));
        assert!(g.contains("....."));
    }

    #[test]
    fn busy_by_kind_partitions_time() {
        let mut tl = Timeline::new(1);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[0].push(span(TaskKind::Update, 1.0, 3.0));
        tl.makespan = 3.0;
        let by = tl.busy_by_kind();
        let p: f64 = by.iter().find(|(k, _)| *k == TaskKind::Panel).unwrap().1;
        let s: f64 = by.iter().find(|(k, _)| *k == TaskKind::Update).unwrap().1;
        assert_eq!(p, 1.0);
        assert_eq!(s, 2.0);
        assert_eq!(tl.busy_time(), 3.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_spans() {
        let mut tl = Timeline::new(2);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[1].push(span(TaskKind::Update, 0.5, 2.0));
        tl.makespan = 2.0;
        let json = chrome_trace_json(&tl);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[1]["tid"], 1);
        assert_eq!(arr[1]["dur"], 1.5e6);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn validate_catches_overlap() {
        let mut tl = Timeline::new(1);
        tl.lanes[0].push(span(TaskKind::Panel, 0.0, 1.0));
        tl.lanes[0].push(span(TaskKind::Update, 0.5, 2.0));
        tl.makespan = 2.0;
        tl.validate();
    }
}
