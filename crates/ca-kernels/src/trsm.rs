//! Triangular solves with multiple right-hand sides (`dtrsm` equivalents).
//!
//! Only the variants the factorizations need are implemented, as standalone
//! functions with self-describing names rather than a flag-driven monolith.
//!
//! The two hot variants (`trsm_right_upper_notrans` — Task L of CALU — and
//! `trsm_left_lower_unit` — the `U₁₂` block row) are blocked: the triangle
//! is carved into `TRSM_NB`-wide diagonal blocks solved by the scalar base
//! case, and everything off-diagonal becomes a rank-`TRSM_NB` [`gemm`]
//! update, so the bulk of the arithmetic runs on the packed BLIS-style
//! GEMM path.

use crate::gemm::{gemm, Kernel, Trans};
use ca_matrix::{MatView, MatViewMut, Scalar};

/// Diagonal-block order below which the scalar base-case solver runs.
const TRSM_NB: usize = 64;

/// `B := B * U⁻¹` with `U` upper triangular, non-unit diagonal
/// (`dtrsm('R','U','N','N')`).
///
/// This is Task L of multithreaded CALU: `L₂₁ = A₂₁ U₁₁⁻¹`.
///
/// Follows BLAS semantics on singular triangles: a zero diagonal entry
/// produces `inf`/`NaN` in the output rather than a panic (factorizations
/// report breakdown separately, like LAPACK `info`).
///
/// # Panics
/// If `U` is not square or its order differs from `B`'s column count.
pub fn trsm_right_upper_notrans<T: Kernel>(u: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let n = u.nrows();
    assert_eq!(u.ncols(), n, "U must be square");
    assert_eq!(b.ncols(), n, "B column count must equal order of U");
    let mut j0 = 0;
    while j0 < n {
        let w = TRSM_NB.min(n - j0);
        if j0 > 0 {
            // B[:, j0..j0+w] -= B[:, 0..j0] · U[0..j0, j0..j0+w]
            let m = b.nrows();
            let (solved, rest) = b.rb().split_at_col(j0);
            gemm(
                Trans::No,
                Trans::No,
                -T::ONE,
                solved.as_ref(),
                u.sub(0, j0, j0, w),
                T::ONE,
                rest.into_sub(0, 0, m, w),
            );
        }
        trsm_right_upper_notrans_base(u.sub(j0, j0, w, w), b.sub(0, j0, b.nrows(), w));
        j0 += w;
    }
}

/// Scalar base case of [`trsm_right_upper_notrans`] (one diagonal block).
fn trsm_right_upper_notrans_base<T: Scalar>(u: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let n = u.nrows();
    let m = b.nrows();
    for j in 0..n {
        // B[:, j] -= sum_{k<j} B[:, k] * U[k, j]
        let u_col = u.col(j);
        for (k, &x) in u_col.iter().enumerate().take(j) {
            if x != T::ZERO {
                // Split borrow: copy the already-solved column k scale into j.
                let (bk_ptr, bj) = {
                    let bk = b.col(k).as_ptr();
                    (bk, b.col_mut(j))
                };
                // SAFETY: columns k and j are disjoint (k < j).
                let bk = unsafe { core::slice::from_raw_parts(bk_ptr, m) };
                for i in 0..m {
                    bj[i] -= x * bk[i];
                }
            }
        }
        let inv = T::ONE / u_col[j];
        for x in b.col_mut(j) {
            *x *= inv;
        }
    }
}

/// `B := L⁻¹ * B` with `L` lower triangular, unit diagonal
/// (`dtrsm('L','L','N','U')`).
///
/// This computes the `U` block row in LU: `U₁₂ = L₁₁⁻¹ A₁₂`.
pub fn trsm_left_lower_unit<T: Kernel>(l: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let m = l.nrows();
    assert_eq!(l.ncols(), m, "L must be square");
    assert_eq!(b.nrows(), m, "B row count must equal order of L");
    let n = b.ncols();
    let mut k0 = 0;
    while k0 < m {
        let w = TRSM_NB.min(m - k0);
        trsm_left_lower_unit_base(l.sub(k0, k0, w, w), b.sub(k0, 0, w, n));
        if k0 + w < m {
            // B[k0+w.., :] -= L[k0+w.., k0..k0+w] · B[k0..k0+w, :]
            let (top, below) = b.rb().split_at_row(k0 + w);
            gemm(
                Trans::No,
                Trans::No,
                -T::ONE,
                l.sub(k0 + w, k0, m - k0 - w, w),
                top.as_ref().sub(k0, 0, w, n),
                T::ONE,
                below,
            );
        }
        k0 += w;
    }
}

/// Scalar base case of [`trsm_left_lower_unit`] (one diagonal block).
fn trsm_left_lower_unit_base<T: Scalar>(l: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let m = l.nrows();
    let n = b.ncols();
    for j in 0..n {
        let bj = b.col_mut(j);
        for k in 0..m {
            let x = bj[k];
            if x != T::ZERO {
                let l_col = l.col(k);
                for i in k + 1..m {
                    bj[i] -= x * l_col[i];
                }
            }
        }
        let _ = j;
    }
}

/// `B := U⁻¹ * B` with `U` upper triangular, non-unit diagonal
/// (`dtrsm('L','U','N','N')`) — back substitution for solvers. BLAS
/// semantics on singular triangles (zero diagonal yields `inf`/`NaN`).
pub fn trsm_left_upper_notrans<T: Scalar>(u: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let m = u.nrows();
    assert_eq!(u.ncols(), m, "U must be square");
    assert_eq!(b.nrows(), m, "B row count must equal order of U");
    let n = b.ncols();
    for j in 0..n {
        let bj = b.col_mut(j);
        for k in (0..m).rev() {
            let x = bj[k] / u.at(k, k);
            bj[k] = x;
            if x != T::ZERO {
                let u_col = u.col(k);
                for i in 0..k {
                    bj[i] -= x * u_col[i];
                }
            }
        }
    }
}

/// `B := U⁻ᵀ * B` with `U` upper triangular, non-unit diagonal
/// (`dtrsm('L','U','T','N')`) — forward substitution with `Uᵀ`, used for
/// transpose solves `AᵀX = B` from an LU factorization. BLAS semantics on
/// singular triangles.
pub fn trsm_left_upper_trans<T: Scalar>(u: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let m = u.nrows();
    assert_eq!(u.ncols(), m, "U must be square");
    assert_eq!(b.nrows(), m, "B row count must equal order of U");
    let n = b.ncols();
    for j in 0..n {
        let bj = b.col_mut(j);
        // Uᵀ is lower triangular: forward substitution; (Uᵀ)[i][k] = U[k][i].
        for k in 0..m {
            let u_col = u.col(k);
            let mut s = bj[k];
            for i in 0..k {
                s -= u_col[i] * bj[i];
            }
            bj[k] = s / u_col[k];
        }
    }
}

/// `B := L⁻ᵀ * B` with `L` lower triangular, unit diagonal
/// (`dtrsm('L','L','T','U')`) — used when solving `AᵀX = B` from an LU
/// factorization.
pub fn trsm_left_lower_trans_unit<T: Scalar>(l: MatView<'_, T>, mut b: MatViewMut<'_, T>) {
    let m = l.nrows();
    assert_eq!(l.ncols(), m, "L must be square");
    assert_eq!(b.nrows(), m, "B row count must equal order of L");
    let n = b.ncols();
    for j in 0..n {
        let bj = b.col_mut(j);
        // Lᵀ is upper triangular with unit diagonal: back substitution.
        for k in (0..m).rev() {
            let l_col = l.col(k);
            let mut s = bj[k];
            for i in k + 1..m {
                s -= l_col[i] * bj[i];
            }
            bj[k] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{norm_max, Matrix};

    fn random_upper(n: usize, seed: u64) -> Matrix {
        let mut rng = ca_matrix::seeded_rng(seed);
        let mut u = ca_matrix::random_uniform(n, n, &mut rng);
        for i in 0..n {
            for j in 0..i {
                u[(i, j)] = 0.0;
            }
            u[(i, i)] = 2.0 + u[(i, i)].abs(); // well away from zero
        }
        u
    }

    fn random_unit_lower(n: usize, seed: u64) -> Matrix {
        let mut rng = ca_matrix::seeded_rng(seed);
        let mut l = ca_matrix::random_uniform(n, n, &mut rng);
        for i in 0..n {
            for j in i..n {
                l[(i, j)] = if i == j { 1.0 } else { 0.0 };
            }
        }
        l
    }

    #[test]
    fn right_upper_solves_xu_eq_b() {
        let n = 7;
        let m = 11;
        let u = random_upper(n, 1);
        let x_true = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(2));
        let b = x_true.matmul(&u);
        let mut x = b.clone();
        trsm_right_upper_notrans(u.view(), x.view_mut());
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn left_lower_unit_solves_lx_eq_b() {
        let m = 9;
        let n = 4;
        let l = random_unit_lower(m, 3);
        let x_true = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(4));
        let b = l.matmul(&x_true);
        let mut x = b.clone();
        trsm_left_lower_unit(l.view(), x.view_mut());
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn left_upper_solves_ux_eq_b() {
        let m = 8;
        let n = 3;
        let u = random_upper(m, 5);
        let x_true = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(6));
        let b = u.matmul(&x_true);
        let mut x = b.clone();
        trsm_left_upper_notrans(u.view(), x.view_mut());
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn left_upper_trans_solves_ut_x_eq_b() {
        let m = 7;
        let u = random_upper(m, 12);
        let x_true = ca_matrix::random_uniform(m, 3, &mut ca_matrix::seeded_rng(13));
        let b = u.transpose().matmul(&x_true);
        let mut x = b.clone();
        trsm_left_upper_trans(u.view(), x.view_mut());
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn left_lower_trans_solves_lt_x_eq_b() {
        let m = 6;
        let l = random_unit_lower(m, 7);
        let x_true = ca_matrix::random_uniform(m, 2, &mut ca_matrix::seeded_rng(8));
        let b = l.transpose().matmul(&x_true);
        let mut x = b.clone();
        trsm_left_lower_trans_unit(l.view(), x.view_mut());
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn one_by_one_and_empty() {
        let u = Matrix::from_rows(1, 1, &[4.0]);
        let mut b = Matrix::from_rows(3, 1, &[4.0, 8.0, 12.0]);
        trsm_right_upper_notrans(u.view(), b.view_mut());
        assert_eq!(b, Matrix::from_rows(3, 1, &[1.0, 2.0, 3.0]));

        let u0: Matrix = Matrix::zeros(0, 0);
        let mut b0: Matrix = Matrix::zeros(5, 0);
        trsm_right_upper_notrans(u0.view(), b0.view_mut());
        let mut b1 = Matrix::zeros(0, 3);
        trsm_left_lower_unit(u0.view(), b1.view_mut());
    }

    #[test]
    fn zero_diagonal_yields_non_finite_blas_style() {
        let mut u = random_upper(3, 9);
        u[(1, 1)] = 0.0;
        let mut b = Matrix::zeros(2, 3);
        b.view_mut().fill(1.0);
        trsm_right_upper_notrans(u.view(), b.view_mut());
        assert!(b.as_slice().iter().any(|x| !x.is_finite()));
    }

    #[test]
    fn right_upper_blocked_crosses_nb_boundary() {
        // Orders straddling TRSM_NB exercise the gemm off-diagonal update.
        for &n in &[TRSM_NB - 1, TRSM_NB, TRSM_NB + 1, 2 * TRSM_NB + 5] {
            let u = random_upper(n, 21);
            let x_true = ca_matrix::random_uniform(33, n, &mut ca_matrix::seeded_rng(22));
            let b = x_true.matmul(&u);
            let mut x = b.clone();
            trsm_right_upper_notrans(u.view(), x.view_mut());
            let err = norm_max(x.sub_matrix(&x_true).view());
            assert!(err < 1e-10 * n as f64, "n={n} err {err}");
        }
    }

    #[test]
    fn left_lower_blocked_crosses_nb_boundary() {
        for &m in &[TRSM_NB - 1, TRSM_NB, TRSM_NB + 1, 2 * TRSM_NB + 5] {
            let l = random_unit_lower(m, 23);
            let x_true = ca_matrix::random_uniform(m, 7, &mut ca_matrix::seeded_rng(24));
            let b = l.matmul(&x_true);
            let mut x = b.clone();
            trsm_left_lower_unit(l.view(), x.view_mut());
            let err = norm_max(x.sub_matrix(&x_true).view());
            assert!(err < 1e-10 * m as f64, "m={m} err {err}");
        }
    }

    #[test]
    fn f32_right_upper_solves_xu_eq_b() {
        let n = TRSM_NB + 3; // cross the blocked/gemm boundary in f32 too
        let u64m = random_upper(n, 31);
        let x64 = ca_matrix::random_uniform(9, n, &mut ca_matrix::seeded_rng(32));
        let u: Matrix<f32> = Matrix::from_f64(&u64m);
        let x_true: Matrix<f32> = Matrix::from_f64(&x64);
        let b = x_true.to_f64().matmul(&u.to_f64());
        let mut x: Matrix<f32> = Matrix::from_f64(&b);
        trsm_right_upper_notrans(u.view(), x.view_mut());
        let err = norm_max(x.to_f64().sub_matrix(&x_true.to_f64()).view());
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn works_on_strided_views() {
        let n = 4;
        let u = random_upper(n, 10);
        let x_true = ca_matrix::random_uniform(5, n, &mut ca_matrix::seeded_rng(11));
        let b = x_true.matmul(&u);
        let mut big = Matrix::zeros(9, 8);
        big.block_mut(2, 3, 5, n).copy_from(b.view());
        trsm_right_upper_notrans(u.view(), big.block_mut(2, 3, 5, n));
        for i in 0..5 {
            for j in 0..n {
                assert!((big[(2 + i, 3 + j)] - x_true[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
