//! Memory-traffic estimates (bytes moved between memory and cache) for each
//! kernel class — the *communication* that communication-avoiding
//! algorithms minimize.
//!
//! The estimates are the standard blocked-algorithm counts: each operand is
//! charged once per pass over it, assuming the `b × b`-scale working set
//! fits cache but the tall operands do not. They feed the simulator's
//! roofline cost model (`max(flops/throughput, bytes/bandwidth)`), which is
//! what makes BLAS2 kernels bandwidth-bound and BLAS3 kernels compute-bound
//! in simulated runs — the mechanism behind the paper's BLAS2/BLAS3 gap.

const W: f64 = 8.0; // bytes per f64

/// `C += A·B` with `C` `m × n`, inner dimension `k`, on the packed
/// BLIS-style path: packing copies are real memory traffic and are charged
/// here so the roofline GB/s attribution stays honest.
///
/// Per the blocked loop structure (`jc` over `NC`, `pc` over `KC`, `ic` over
/// `MC` — constants re-exported by this crate):
/// * every `KC × NC` tile of B is packed exactly once — B is read and
///   pack-written once in total (`2·k·n` words);
/// * every `MC × KC` block of A is re-packed for each `jc` sweep — A is
///   read and pack-written `⌈n/NC⌉` times (`2·m·k·⌈n/NC⌉` words);
/// * C streams through once per `pc` sweep — read and written `⌈k/KC⌉`
///   times (`2·m·n·⌈k/KC⌉` words).
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    let a_sweeps = n.div_ceil(crate::NC).max(1) as f64;
    let c_sweeps = k.div_ceil(crate::KC).max(1) as f64;
    W * (2.0 * (m * k) as f64 * a_sweeps
        + 2.0 * (k * n) as f64
        + 2.0 * (m * n) as f64 * c_sweeps)
}

/// Packing a `rows × cols` operand block into a contiguous microkernel
/// image (a scheduler pack task): the source is read once, the image
/// written once.
pub fn pack(rows: usize, cols: usize) -> f64 {
    W * 2.0 * (rows * cols) as f64
}

/// One packed-image tile multiply `C += Apack·Bpack` (`C` `m × n`, depth
/// `k`): the images stream in once per `pc` sweep they survive in cache,
/// C is read and written once per sweep. Packing traffic is charged to the
/// pack tasks ([`pack`]), not here.
pub fn gemm_packed(m: usize, n: usize, k: usize) -> f64 {
    let c_sweeps = k.div_ceil(crate::KC).max(1) as f64;
    W * ((m * k) as f64 + (k * n) as f64 + 2.0 * (m * n) as f64 * c_sweeps)
}

/// Right triangular solve `B := B·U⁻¹`, `B` `m × n`: read U, read+write B.
pub fn trsm_right(m: usize, n: usize) -> f64 {
    W * ((n * n / 2) as f64 + 2.0 * (m * n) as f64)
}

/// Left triangular solve over an `m × n` block.
pub fn trsm_left(m: usize, n: usize) -> f64 {
    W * ((m * m / 2) as f64 + 2.0 * (m * n) as f64)
}

/// Compact-WY application to an `m × n` block with `k` reflectors:
/// read V and T, read+write C, plus the `k × n` W workspace twice.
pub fn larfb(m: usize, n: usize, k: usize) -> f64 {
    W * ((m * k) as f64 + (k * k / 2) as f64 + 2.0 * (m * n) as f64 + 2.0 * (k * n) as f64)
}

/// BLAS2 GEPP of an `m × n` panel: the trailing block is re-read and
/// re-written once per column — `n` passes over O(m·n) data. This is the
/// term TSLU's single-pass-per-level structure avoids.
pub fn getf2(m: usize, n: usize) -> f64 {
    // sum_j 2·(m-j)(n-j) words ≈ 2·m·n²/2 for m >> n.
    let (mf, nf) = (m as f64, n as f64);
    W * (mf * nf * nf - nf * nf * nf / 3.0).max(2.0 * mf * nf)
}

/// Recursive GEPP: BLAS3-like — each half-panel recursion passes over the
/// panel a logarithmic number of times.
pub fn rgetf2(m: usize, n: usize) -> f64 {
    let passes = (n.max(2) as f64).log2().ceil();
    W * 2.0 * (m * n) as f64 * passes
}

/// BLAS2 Householder QR of an `m × n` panel (same column-at-a-time pattern
/// as [`getf2`], with twice the arithmetic per pass).
pub fn geqr2(m: usize, n: usize) -> f64 {
    getf2(m, n)
}

/// Recursive QR: logarithmic passes, like [`rgetf2`].
pub fn geqr3(m: usize, n: usize) -> f64 {
    rgetf2(m, n)
}

/// Row interchanges: `swaps` row pairs over `n` columns, read+write both.
pub fn laswp(swaps: usize, n: usize) -> f64 {
    W * 4.0 * (swaps * n) as f64
}

/// Sequential communication lower bound, in **bytes**, for an out-of-core
/// LU factorization of an `m × n` matrix with a fast memory of
/// `mem_bytes` bytes and `elem_bytes`-byte elements.
///
/// Demmel–Grigori–Hoemmen–Langou (arXiv 0806.2159) extend the
/// Hong–Kung/Irony–Toledo–Tiskin argument across every level of the memory
/// hierarchy: any schedule of the O(n³) LU arithmetic moves
/// `Ω(#flops / √M)` words across a boundary with `M` words of fast memory
/// on its near side — on top of the *compulsory* traffic of reading the
/// input once and writing the factors once (`2mn` words). The bound used
/// here is the sum of both terms with unit constants:
///
/// ```text
///   words ≥ 2·m·n + flops_getrf(m, n) / √M
/// ```
///
/// The `ooc_sweep` bench gates the measured tile-store byte count against
/// `1.5×` this bound.
pub fn ooc_lu_lower_bound(m: usize, n: usize, mem_bytes: usize, elem_bytes: usize) -> f64 {
    ooc_lower_bound(m, n, crate::flops::getrf(m, n), mem_bytes, elem_bytes)
}

/// Sequential communication lower bound, in bytes, for out-of-core QR —
/// [`ooc_lu_lower_bound`] with the `geqrf` flop count (CAQR performs the
/// same `Θ(flops/√M)` word movement, arXiv 0806.2159 §4).
pub fn ooc_qr_lower_bound(m: usize, n: usize, mem_bytes: usize, elem_bytes: usize) -> f64 {
    ooc_lower_bound(m, n, crate::flops::geqrf(m, n), mem_bytes, elem_bytes)
}

fn ooc_lower_bound(m: usize, n: usize, flops: f64, mem_bytes: usize, elem_bytes: usize) -> f64 {
    assert!(mem_bytes > 0 && elem_bytes > 0, "empty memory budget");
    let mem_words = (mem_bytes / elem_bytes).max(1) as f64;
    let compulsory = 2.0 * (m * n) as f64;
    elem_bytes as f64 * (compulsory + flops / mem_words.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blas2_panel_moves_far_more_than_blas3() {
        // 20000 x 100 panel: dgetf2 re-traverses the panel ~100 times,
        // rgetf2 ~7 times.
        let b2 = getf2(20_000, 100);
        let rec = rgetf2(20_000, 100);
        assert!(b2 > 5.0 * rec, "blas2 {b2} vs recursive {rec}");
    }

    #[test]
    fn gemm_traffic_counts_packing_copies() {
        // 100³ fits inside one cache block in every dimension: each operand
        // is read once and pack-written once, C is read+written once.
        let t = gemm(100, 100, 100);
        assert_eq!(t, 8.0 * (2.0 * 10_000.0 + 2.0 * 10_000.0 + 2.0 * 10_000.0));
    }

    #[test]
    fn gemm_traffic_charges_repacking_across_sweeps() {
        // k > KC: C streams once per pc sweep. n > NC: A repacked per jc
        // sweep. Both must exceed the single-block model.
        let single = gemm(64, 64, 64) / (64.0 * 64.0);
        let deep = gemm(64, 64, 4 * crate::KC) / (64.0 * 4.0 * crate::KC as f64);
        assert!(deep < 4.0 * single, "deep-k traffic should amortize A/B reads");
        let wide = gemm(64, 4 * crate::NC, 64);
        let narrow = gemm(64, crate::NC, 64);
        assert!(wide > 3.9 * narrow, "wide-n must charge A repacking per sweep");
    }

    #[test]
    fn gemm_arithmetic_intensity_grows_with_size() {
        // flops/byte must grow ~linearly with the block size: that is why
        // BLAS3 becomes compute-bound.
        let ai = |s: usize| crate::flops::gemm(s, s, s) / gemm(s, s, s);
        assert!(ai(200) > 3.0 * ai(50));
    }

    #[test]
    fn swap_traffic_scales_with_width() {
        assert_eq!(laswp(10, 100), 8.0 * 4.0 * 1000.0);
    }

    #[test]
    fn ooc_bound_has_compulsory_floor_and_shrinks_with_memory() {
        let n = 4096;
        // With the whole matrix resident, the bound approaches the
        // compulsory read-input + write-factors traffic.
        let huge = ooc_lu_lower_bound(n, n, 64 << 30, 8);
        let compulsory = 8.0 * 2.0 * (n * n) as f64;
        assert!(huge < 1.1 * compulsory, "huge-memory bound {huge} vs {compulsory}");
        // Shrinking memory 4× grows the bandwidth term by 2×.
        let small = ooc_lu_lower_bound(n, n, 128 << 20, 8) - compulsory;
        let tiny = ooc_lu_lower_bound(n, n, 32 << 20, 8) - compulsory;
        assert!((tiny / small - 2.0).abs() < 1e-9, "sqrt scaling: {tiny} vs {small}");
        // QR moves twice the flops, so twice the bandwidth term.
        let qr = ooc_qr_lower_bound(n, n, 128 << 20, 8) - compulsory;
        assert!((qr / small - 2.0).abs() < 1e-9);
    }
}
