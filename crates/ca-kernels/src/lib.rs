//! # ca-kernels
//!
//! Pure-Rust BLAS/LAPACK-style kernels for the `ca-factor` workspace: the
//! sequential building blocks under the multithreaded communication-avoiding
//! LU and QR factorizations of Donfack, Grigori & Gupta (IPDPS 2010).
//!
//! | LAPACK/BLAS name | here |
//! |---|---|
//! | `dgemm`  | [`gemm`] |
//! | `dtrsm`  | [`trsm_right_upper_notrans`] and friends |
//! | `dger` / `idamax` | [`ger`], [`iamax`] |
//! | `dgetf2` | [`getf2`] (BLAS2 GEPP) |
//! | `rgetf2` | [`rgetf2`] (recursive GEPP, Toledo) |
//! | `dgeqr2` | [`geqr2`] (BLAS2 Householder QR) |
//! | `dgeqr3` | [`geqr3`] (recursive QR, Elmroth–Gustavson) |
//! | `dlarfg`/`dlarf`/`dlarft`/`dlarfb` | [`larfg`], [`larf_left`], [`larft`], [`larfb_left`], [`larfb_left_pair`] |
//!
//! All kernels operate on [`ca_matrix::MatView`]/[`ca_matrix::MatViewMut`]
//! blocks, so they compose into panel/tile tasks without copying, and all
//! are generic over the sealed [`ca_matrix::Scalar`] trait (`f32`/`f64`,
//! with `f64` defaults so existing call sites are unchanged).
//!
//! [`gemm`] is a packed BLIS-style implementation (DESIGN.md §10, §15):
//! three cache loops over [`NC`]/[`KC`]/[`MC`] around a register-tiled
//! microkernel, runtime-dispatched per element type between AVX-512F,
//! AVX2+FMA and a portable scalar fallback ([`gemm_backend`] reports which;
//! `CA_KERNELS_FORCE_SCALAR` pins the scalar path and
//! `CA_KERNELS_BACKEND=<name>` pins any supported backend). [`par_gemm`]
//! runs the identical decomposition as worker tasks — bitwise-identical
//! results at every worker count — and its pack/compute task bodies
//! ([`pack_a_slab`], [`pack_b_panel`], [`gemm_packed`]) are exported for
//! the scheduler DAG builders in `ca-core`. The pre-BLIS AXPY-loop kernel
//! survives as [`gemm_axpy`] — the benchmark baseline and a second test
//! oracle.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod flops;
pub mod traffic;
mod axpy;
mod gemm;
mod ger;
mod microkernel;
mod pack;
mod par_gemm;
mod householder;
mod lu_recursive;
mod lu_unblocked;
mod qr_recursive;
mod qr_unblocked;
mod trsm;

pub use axpy::gemm_axpy;
pub use gemm::{
    gemm, gemm_available_backends, gemm_backend, gemm_force_scalar, gemm_kernel_name,
    gemm_with_backend, Backend, Kernel, KernelSpec, Trans, KC, MC, MR, NC, NR,
};
pub use ger::{ger, iamax, scal};
pub use pack::{pack_a, pack_b, PackTrans};
pub use par_gemm::{gemm_packed, pack_a_slab, pack_b_panel, packed_a_len, packed_b_len, par_gemm};
pub use householder::{
    form_q_thin, larf_left, larfb_left, larfb_left_multi, larfb_left_pair, larfg, larft,
};
pub use lu_recursive::rgetf2;
pub use lu_unblocked::{getf2, lu_nopiv, LuInfo};
pub use qr_recursive::geqr3;
pub use qr_unblocked::geqr2;
pub use trsm::{
    trsm_left_lower_trans_unit, trsm_left_lower_unit, trsm_left_upper_notrans,
    trsm_left_upper_trans, trsm_right_upper_notrans,
};
