//! Recursive Householder QR (`dgeqr3`), after Elmroth & Gustavson (1998).
//!
//! Recursing on the column count turns the bulk of the work into BLAS3
//! (`larfb` block applications); the compact-WY `T` factor of the whole
//! panel is assembled on the way up. This is the sequential kernel the paper
//! runs inside TSQR leaves and tree nodes ("the efficient recursive QR
//! factorization [10]").

use crate::gemm::{gemm, Kernel, Trans};
use crate::householder::{larfb_left, larft};
use crate::qr_unblocked::geqr2;
use ca_matrix::{MatView, MatViewMut, Matrix, Scalar};

/// Column count at which recursion bottoms out into `geqr2` + `larft`.
const BASE_COLS: usize = 4;

/// Recursive QR of an `m × n` view (`m ≥ n` required), in place.
///
/// On return `a` holds `R` in its upper triangle and the Householder vectors
/// below the diagonal; `t` (an `n × n` view) receives the upper-triangular
/// compact-WY factor of the whole panel, so `Q = I − V·T·Vᵀ`.
///
/// # Panics
/// If `m < n` or `t` is smaller than `n × n`.
pub fn geqr3<T: Kernel>(mut a: MatViewMut<'_, T>, mut t: MatViewMut<'_, T>) {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "geqr3 requires a tall or square panel (m >= n), got {m}x{n}");
    assert!(t.nrows() >= n && t.ncols() >= n, "T workspace must be at least n x n");
    if n == 0 {
        return;
    }
    if n <= BASE_COLS {
        let mut tau = Vec::with_capacity(n);
        geqr2(a.rb(), &mut tau);
        larft(a.as_ref(), &tau, t.rb());
        return;
    }

    let n1 = n / 2;
    let n2 = n - n1;

    // Factor the left half: V1, R1, T1.
    geqr3(a.sub(0, 0, m, n1), t.sub(0, 0, n1, n1));

    // A[:, n1..] := Q1ᵀ A[:, n1..]
    {
        let (left, right) = a.rb().split_at_col(n1);
        larfb_left(Trans::Yes, left.as_ref(), t.as_ref().sub(0, 0, n1, n1), right);
    }

    // Factor the trailing block: V2, R2, T2 (rows n1.., cols n1..).
    geqr3(a.sub(n1, n1, m - n1, n2), t.sub(n1, n1, n2, n2));

    // T3 = T[0..n1, n1..n] = −T1 · (V1ᵀ V2) · T2, where V2 is embedded in
    // rows n1..m. V1ᵀV2 = V1[n1.., :]ᵀ · V2 with V2's unit-diagonal top
    // block materialized explicitly (it is at most BASE-sized relative to b).
    {
        let v2_unit = materialize_unit_lower(a.as_ref().sub(n1, n1, m - n1, n2));
        let v1_low = a.as_ref().sub(n1, 0, m - n1, n1);
        let mut w = Matrix::zeros(n1, n2);
        gemm(Trans::Yes, Trans::No, T::ONE, v1_low, v2_unit.view(), T::ZERO, w.view_mut());

        // w := T1 * w (T1 upper triangular n1×n1)
        let t1 = t.as_ref().sub(0, 0, n1, n1);
        trmm_upper_left(t1, w.view_mut());
        // w := w * T2 (T2 upper triangular n2×n2)
        let t2 = t.as_ref().sub(n1, n1, n2, n2);
        trmm_upper_right(t2, w.view_mut());

        let mut t3 = t.sub(0, n1, n1, n2);
        for j in 0..n2 {
            for i in 0..n1 {
                t3.set(i, j, -w[(i, j)]);
            }
        }
    }
}

/// Copies a unit-lower-trapezoidal reflector block into an explicit dense
/// matrix (upper part zeroed, unit diagonal written).
fn materialize_unit_lower<T: Scalar>(v: MatView<'_, T>) -> Matrix<T> {
    let m = v.nrows();
    let k = v.ncols();
    Matrix::from_fn(m, k, |i, j| {
        if i == j {
            T::ONE
        } else if i > j {
            v.at(i, j)
        } else {
            T::ZERO
        }
    })
}

/// In place `W := T · W` with `T` upper triangular (non-unit).
fn trmm_upper_left<T: Scalar>(t: MatView<'_, T>, mut w: MatViewMut<'_, T>) {
    let k = t.nrows();
    debug_assert_eq!(w.nrows(), k);
    for j in 0..w.ncols() {
        let col = w.col_mut(j);
        for i in 0..k {
            let mut s = T::ZERO;
            for (l, &cl) in col.iter().enumerate().take(k).skip(i) {
                s += t.at(i, l) * cl;
            }
            col[i] = s;
        }
    }
}

/// In place `W := W · T` with `T` upper triangular (non-unit).
fn trmm_upper_right<T: Scalar>(t: MatView<'_, T>, mut w: MatViewMut<'_, T>) {
    let k = t.nrows();
    debug_assert_eq!(w.ncols(), k);
    let m = w.nrows();
    // Column j of the result uses columns 0..=j of W: process right-to-left.
    for j in (0..k).rev() {
        for i in 0..m {
            let mut s = T::ZERO;
            for l in 0..=j {
                s += w.at(i, l) * t.at(l, j);
            }
            w.set(i, j, s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::form_q_thin;
    use ca_matrix::{norm_max, orthogonality, qr_residual};

    fn check(m: usize, n: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(seed));
        let mut a = a0.clone();
        let mut t = Matrix::zeros(n, n);
        geqr3(a.view_mut(), t.view_mut());
        let q = form_q_thin(a.view(), t.view());
        let r = a.upper();
        assert!(orthogonality(&q) < 1e-12 * (m as f64), "Q not orthogonal for {m}x{n}");
        let res = qr_residual(&a0, &q, &r);
        assert!(res < 1e-12 * (m as f64), "residual {res} for {m}x{n}");
    }

    #[test]
    fn recursive_qr_various_shapes() {
        check(4, 4, 1); // base case exactly
        check(5, 5, 2); // first split
        check(16, 16, 3);
        check(40, 12, 4);
        check(100, 32, 5);
        check(65, 33, 6); // odd sizes
        check(7, 1, 7);
    }

    #[test]
    fn recursive_matches_unblocked_r_up_to_sign() {
        let m = 30;
        let n = 12;
        let a0 = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(9));
        let mut a3 = a0.clone();
        let mut t = Matrix::zeros(n, n);
        geqr3(a3.view_mut(), t.view_mut());
        let mut a2 = a0.clone();
        let mut tau = Vec::new();
        crate::qr_unblocked::geqr2(a2.view_mut(), &mut tau);
        // R is unique up to row signs.
        for i in 0..n {
            for j in i..n {
                let x = a3[(i, j)].abs();
                let y = a2[(i, j)].abs();
                assert!((x - y).abs() < 1e-11, "R mismatch at ({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn t_factor_is_upper_triangular() {
        let m = 20;
        let n = 10;
        let mut a = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(10));
        let mut t = Matrix::zeros(n, n);
        geqr3(a.view_mut(), t.view_mut());
        for j in 0..n {
            for i in j + 1..n {
                assert_eq!(t[(i, j)], 0.0, "T not upper triangular at ({i},{j})");
            }
        }
        assert!(norm_max(t.view()) > 0.0);
    }

    #[test]
    #[should_panic(expected = "m >= n")]
    fn wide_panel_rejected() {
        let mut a: Matrix = Matrix::zeros(3, 5);
        let mut t: Matrix = Matrix::zeros(5, 5);
        geqr3(a.view_mut(), t.view_mut());
    }
}
