//! Unblocked Householder QR (`dgeqr2`) — the BLAS2 panel routine the paper
//! calls `MKL_dgeqr2`, and the base case of the recursive `geqr3`.

use crate::householder::{larf_left, larfg};
use ca_matrix::{MatViewMut, Scalar};

/// Householder QR of an `m × n` view, in place. On return the upper triangle
/// holds `R`; the reflector vectors `v_j` are stored below the diagonal with
/// implicit unit diagonal; `tau` receives the `min(m, n)` scalar factors.
pub fn geqr2<T: Scalar>(mut a: MatViewMut<'_, T>, tau: &mut Vec<T>) {
    let m = a.nrows();
    let n = a.ncols();
    let k = m.min(n);
    tau.clear();
    tau.reserve(k);

    let mut vbuf = vec![T::ZERO; m];
    for j in 0..k {
        // Generate reflector annihilating A[j+1.., j].
        let alpha = a.at(j, j);
        let (beta, tj) = {
            let col = a.col_mut(j);
            larfg(alpha, &mut col[j + 1..])
        };
        a.set(j, j, beta);
        tau.push(tj);

        if j + 1 < n && tj != T::ZERO {
            // Apply H to the trailing columns A[j.., j+1..].
            let len = m - j;
            vbuf[0] = T::ONE;
            vbuf[1..len].copy_from_slice(&a.col(j)[j + 1..]);
            let trailing = a.sub(j, j + 1, len, n - j - 1);
            larf_left(tj, &vbuf[..len], trailing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::{form_q_thin, larft};
    use ca_matrix::{norm_max, orthogonality, qr_residual, Matrix};

    fn check_qr(m: usize, n: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(seed));
        let mut a = a0.clone();
        let mut tau = Vec::new();
        geqr2(a.view_mut(), &mut tau);
        let k = m.min(n);
        assert_eq!(tau.len(), k);

        let mut t = Matrix::zeros(k, k);
        larft(a.block(0, 0, m, k), &tau, t.view_mut());
        let q = form_q_thin(a.block(0, 0, m, k), t.view());
        let r = a.upper();
        assert!(orthogonality(&q) < 1e-13 * (m as f64), "Q not orthogonal {m}x{n}");
        let res = qr_residual(&a0, &q, &r);
        assert!(res < 1e-13 * (m as f64), "residual {res} for {m}x{n}");
    }

    #[test]
    fn qr_various_shapes() {
        check_qr(1, 1, 1);
        check_qr(6, 6, 2);
        check_qr(20, 5, 3); // tall
        check_qr(5, 9, 4); // wide
        check_qr(50, 50, 5);
        check_qr(128, 16, 6);
    }

    #[test]
    fn r_diagonal_sign_convention() {
        // LAPACK-style larfg makes beta = -sign(alpha)*norm: R diagonal has
        // the opposite sign of the leading entry. Just check |R[0,0]| = ‖a‖.
        let a0 = Matrix::from_rows(3, 1, &[3.0, 0.0, 4.0]);
        let mut a = a0.clone();
        let mut tau = Vec::new();
        geqr2(a.view_mut(), &mut tau);
        assert!((a[(0, 0)].abs() - 5.0).abs() < 1e-14);
    }

    #[test]
    fn qr_of_zero_matrix() {
        let mut a = Matrix::zeros(4, 3);
        let mut tau = Vec::new();
        geqr2(a.view_mut(), &mut tau);
        assert_eq!(tau, vec![0.0, 0.0, 0.0]);
        assert_eq!(norm_max(a.view()), 0.0);
    }

    #[test]
    fn qr_of_orthogonal_columns_gives_diagonal_r() {
        // Columns of the identity are already orthonormal.
        let mut a = Matrix::from_fn(5, 3, |i, j| if i == j { 2.0 } else { 0.0 });
        let a0 = a.clone();
        let mut tau = Vec::new();
        geqr2(a.view_mut(), &mut tau);
        let r = a.upper();
        for i in 0..3 {
            assert!((r[(i, i)].abs() - 2.0).abs() < 1e-14);
            for j in i + 1..3 {
                assert!(r[(i, j)].abs() < 1e-14);
            }
        }
        let _ = a0;
    }
}
