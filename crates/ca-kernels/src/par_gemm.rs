//! Scheduler-parallel GEMM: the BLIS cache loops as a task decomposition.
//!
//! [`par_gemm`] splits the same `jc`/`pc`/`ic` loop nest as the serial
//! [`crate::gemm`] into units a worker pool can execute:
//!
//! * the trailing matrix is tiled into `MC`-row **slabs** × `NC`-column
//!   **panels** — each (slab, panel) pair is one C tile owned by exactly one
//!   task;
//! * for each `KC`-deep `pc` chunk, a **pack phase** fills one packed-A
//!   image per slab and one packed-B image per panel (each packed exactly
//!   once per chunk, shared by every tile task that reads it), then a
//!   **compute phase** runs [`crate::gemm::macro_kernel`] on every tile.
//!
//! The `pc` chunks run in order with a barrier between phases, so each C
//! element sees `scale(beta)` followed by `pc`-ascending accumulation — the
//! exact per-element operation sequence of the serial driver, on identically
//! packed panels, through the same microkernel. Results are therefore
//! **bitwise identical** to serial [`crate::gemm`] at every worker count;
//! the differential conformance suite pins this down. Pack memory is
//! bounded by one `KC` stripe of each operand
//! (`m_pad·KC + KC·n_pad` elements), matching the serial path's locality.
//!
//! Tasks are claimed off an atomic counter (no per-task allocation, no
//! ordering sensitivity), which is the in-crate analogue of how `ca-sched`
//! consumes the same decomposition: the `packed_*`/[`gemm_packed`] helpers
//! below are the building blocks `ca-core`'s DAG builders use to express
//! pack→tile dependencies as explicit graph edges with rect footprints.

use crate::gemm::{macro_kernel, op_shape, scale, Kernel, Trans, KC, MC, NC};
use crate::pack::{pack_a, pack_b, PackTrans};
use ca_matrix::{AlignedBuf, MatView, MatViewMut, Scalar};
use core::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pack-image slots written by at most one task each (claim via atomic
/// counter), then read shared in the compute phase; the inter-phase scope
/// barrier separates the writes from the reads.
struct Slots<T: Scalar>(Vec<UnsafeCell<AlignedBuf<T>>>);

// SAFETY: slot access is phased — each slot is written by exactly one pack
// task (tasks claim distinct indices off an atomic counter), and only read
// after the pack scope joins. No slot is ever aliased mutably.
unsafe impl<T: Scalar> Sync for Slots<T> {}

impl<T: Scalar> Slots<T> {
    fn new(n: usize) -> Self {
        Self((0..n).map(|_| UnsafeCell::new(AlignedBuf::new())).collect())
    }
}

/// A raw C-matrix base pointer that may cross thread boundaries; tile tasks
/// derive disjoint block windows from it.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

// SAFETY: tile tasks write disjoint (slab, panel) blocks of C — distinct
// tile indices off the atomic counter — so no element is aliased.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// `C := alpha * op(A) * op(B) + beta * C`, decomposed over `workers`
/// threads (`workers <= 1` still runs the task decomposition, on the
/// calling thread).
///
/// Bitwise identical to the serial [`crate::gemm`] at every worker count —
/// see the module docs for why.
///
/// # Panics
/// If the shapes of `op(A)`, `op(B)` and `C` are inconsistent.
#[allow(clippy::too_many_arguments)] // BLAS-style call convention
pub fn par_gemm<T: Kernel>(
    workers: usize,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    mut c: MatViewMut<'_, T>,
) {
    let spec = T::spec();
    let (m, ka) = op_shape(ta, a);
    let (kb, n) = op_shape(tb, b);
    assert_eq!(ka, kb, "par_gemm inner dimension mismatch: op(A) is {m}x{ka}, op(B) is {kb}x{n}");
    assert_eq!(c.nrows(), m, "par_gemm C row mismatch");
    assert_eq!(c.ncols(), n, "par_gemm C column mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    if alpha == T::ZERO || k == 0 {
        scale(beta, c.rb());
        return;
    }

    let tap: PackTrans = ta.into();
    let tbp: PackTrans = tb.into();
    let (mr, nr) = (spec.mr, spec.nr);
    let nslabs = m.div_ceil(MC);
    let npanels = n.div_ceil(NC);
    let a_slots = Slots::<T>::new(nslabs);
    let b_slots = Slots::<T>::new(npanels);
    let ldc = c.ld();
    let cbase = SendPtr(c.as_mut_ptr());
    let workers = workers.max(1);

    let mut pc = 0;
    let mut first = true;
    while pc < k {
        let kcb = KC.min(k - pc);

        // Pack phase: one task per slab / panel image of this pc chunk.
        let next = AtomicUsize::new(0);
        let total = nslabs + npanels;
        std::thread::scope(|s| {
            for _ in 0..workers.min(total) {
                let next = &next;
                let a_slots = &a_slots;
                let b_slots = &b_slots;
                s.spawn(move || loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= total {
                        break;
                    }
                    if t < nslabs {
                        let ic = t * MC;
                        let mb = MC.min(m - ic);
                        // SAFETY: this task is the sole claimant of slot t
                        // (distinct counter values) within this phase.
                        let buf = unsafe { &mut *a_slots.0[t].get() };
                        let dst = buf.scratch(mb.next_multiple_of(mr) * kcb);
                        pack_a(tap, a, ic, mb, pc, kcb, dst, mr);
                    } else {
                        let pj = t - nslabs;
                        let jc = pj * NC;
                        let nb = NC.min(n - jc);
                        // SAFETY: sole claimant of slot pj, as above.
                        let buf = unsafe { &mut *b_slots.0[pj].get() };
                        let dst = buf.scratch(kcb * nb.next_multiple_of(nr));
                        pack_b(tbp, b, pc, kcb, jc, nb, dst, nr);
                    }
                });
            }
        });

        // Compute phase: one task per (slab, panel) C tile.
        let next = AtomicUsize::new(0);
        let total = nslabs * npanels;
        std::thread::scope(|s| {
            for _ in 0..workers.min(total) {
                let next = &next;
                let a_slots = &a_slots;
                let b_slots = &b_slots;
                s.spawn(move || loop {
                    // Capture the whole SendPtr wrapper, not its raw field
                    // (disjoint closure capture would otherwise grab the
                    // non-Send `*mut T` directly).
                    let cbase = cbase;
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= total {
                        break;
                    }
                    let si = t % nslabs;
                    let pj = t / nslabs;
                    let ic = si * MC;
                    let mb = MC.min(m - ic);
                    let jc = pj * NC;
                    let nb = NC.min(n - jc);
                    // SAFETY: the pack scope joined before this one started,
                    // so the slots are fully written and only read now.
                    let apack: &[T] = unsafe { &*a_slots.0[si].get() };
                    let bpack: &[T] = unsafe { &*b_slots.0[pj].get() };
                    // SAFETY: tile (si, pj) is claimed by this task alone;
                    // its (ic, jc)+(mb × nb) window of C is disjoint from
                    // every other tile and in bounds by construction.
                    unsafe {
                        let cp = cbase.0.add(ic + jc * ldc);
                        if first {
                            // Fold the one-time beta scaling into the first
                            // chunk's tile pass (same per-element order as
                            // the serial driver: scale, then accumulate).
                            scale(beta, MatViewMut::from_raw_parts(cp, mb, nb, ldc));
                        }
                        macro_kernel(spec, mb, nb, kcb, alpha, apack, bpack, cp, ldc);
                    }
                });
            }
        });

        first = false;
        pc += kcb;
    }
}

/// Packed-A image size (elements) for an `mb`-row slab over the full `k`
/// depth, in `T`'s dispatched geometry. What a scheduler task should size
/// its [`AlignedBuf`] to before [`pack_a_slab`].
pub fn packed_a_len<T: Kernel>(mb: usize, k: usize) -> usize {
    mb.next_multiple_of(T::spec().mr) * k
}

/// Packed-B image size (elements) for an `nb`-column panel over the full
/// `k` depth (see [`packed_a_len`]).
pub fn packed_b_len<T: Kernel>(nb: usize, k: usize) -> usize {
    k * nb.next_multiple_of(T::spec().nr)
}

/// Packs the full-depth `mb × k` slab of `op(A)` starting at row `ic` into
/// `buf`, one `KC` chunk at a time (chunk `pc` at element offset
/// `mb_pad · pc`), in `T`'s dispatched geometry.
///
/// A scheduler **pack task**: runs once per slab per trailing update, after
/// which any number of [`gemm_packed`] tile tasks may read the image
/// concurrently.
pub fn pack_a_slab<T: Kernel>(ta: Trans, a: MatView<'_, T>, ic: usize, mb: usize, buf: &mut AlignedBuf<T>) {
    let spec = T::spec();
    let (_, k) = op_shape(ta, a);
    let mb_pad = mb.next_multiple_of(spec.mr);
    let dst = buf.scratch(mb_pad * k);
    let mut pc = 0;
    while pc < k {
        let kcb = KC.min(k - pc);
        pack_a(ta.into(), a, ic, mb, pc, kcb, &mut dst[mb_pad * pc..mb_pad * (pc + kcb)], spec.mr);
        pc += kcb;
    }
}

/// Packs the full-depth `k × nb` panel of `op(B)` starting at column `jc`
/// into `buf`, one `KC` chunk at a time (chunk `pc` at element offset
/// `nb_pad · pc`). Counterpart of [`pack_a_slab`].
pub fn pack_b_panel<T: Kernel>(tb: Trans, b: MatView<'_, T>, jc: usize, nb: usize, buf: &mut AlignedBuf<T>) {
    let spec = T::spec();
    let (k, _) = op_shape(tb, b);
    let nb_pad = nb.next_multiple_of(spec.nr);
    let dst = buf.scratch(nb_pad * k);
    let mut pc = 0;
    while pc < k {
        let kcb = KC.min(k - pc);
        pack_b(tb.into(), b, pc, kcb, jc, nb, &mut dst[nb_pad * pc..nb_pad * (pc + kcb)], spec.nr);
        pc += kcb;
    }
}

/// `C := alpha * Apack · Bpack + beta * C` over pre-packed full-depth
/// images from [`pack_a_slab`] / [`pack_b_panel`] (`C` is `mb × nb`, the
/// contraction depth is `k`).
///
/// A scheduler **tile task**: bitwise identical to the corresponding C
/// block of serial [`crate::gemm`], because it replays the same
/// `pc`-ascending [`macro_kernel`] sequence on the same packed images.
pub fn gemm_packed<T: Kernel>(
    alpha: T,
    apack: &AlignedBuf<T>,
    bpack: &AlignedBuf<T>,
    k: usize,
    beta: T,
    mut c: MatViewMut<'_, T>,
) {
    let spec = T::spec();
    let (mb, nb) = (c.nrows(), c.ncols());
    if mb == 0 || nb == 0 {
        return;
    }
    scale(beta, c.rb());
    if alpha == T::ZERO || k == 0 {
        return;
    }
    let mb_pad = mb.next_multiple_of(spec.mr);
    let nb_pad = nb.next_multiple_of(spec.nr);
    assert!(apack.len() >= mb_pad * k, "gemm_packed: A image too small");
    assert!(bpack.len() >= nb_pad * k, "gemm_packed: B image too small");
    let ldc = c.ld();
    let cbase = c.as_mut_ptr();
    let mut pc = 0;
    while pc < k {
        let kcb = KC.min(k - pc);
        // SAFETY: the chunk sub-slices hold the packed mb×kcb / kcb×nb
        // images in `spec`'s layout (offsets are whole chunks, so panel
        // starts keep the aligned-buffer SIMD alignment); C is mb × nb with
        // leading dimension ldc, owned mutably here.
        unsafe {
            macro_kernel(
                spec,
                mb,
                nb,
                kcb,
                alpha,
                &apack[mb_pad * pc..mb_pad * (pc + kcb)],
                &bpack[nb_pad * pc..nb_pad * (pc + kcb)],
                cbase,
                ldc,
            );
        }
        pc += kcb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;
    use ca_matrix::Matrix;

    fn case(m: usize, n: usize, k: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = ca_matrix::seeded_rng(m as u64 * 1000 + n as u64 * 10 + k as u64);
        (
            ca_matrix::random_uniform(m, k, &mut rng),
            ca_matrix::random_uniform(k, n, &mut rng),
            ca_matrix::random_uniform(m, n, &mut rng),
        )
    }

    #[test]
    fn par_gemm_is_bitwise_identical_to_serial() {
        // Sizes straddling slab (MC) and panel (NC) boundaries and multiple
        // KC chunks.
        for &(m, n, k) in &[
            (7, 5, 9),
            (MC + 3, 33, KC + 17),
            (2 * MC + 1, NC + 5, 2 * KC + 3),
            (MC, NC, KC),
        ] {
            let (a, b, c0) = case(m, n, k);
            let mut serial = c0.clone();
            gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), -0.5, serial.view_mut());
            for workers in [1, 2, 4] {
                let mut par = c0.clone();
                par_gemm(workers, Trans::No, Trans::No, 1.0, a.view(), b.view(), -0.5, par.view_mut());
                assert_eq!(
                    par.as_slice(),
                    serial.as_slice(),
                    "par_gemm({workers}) diverged from serial at {m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn par_gemm_handles_transposes() {
        let (m, n, k) = (MC + 9, 41, 65);
        let mut rng = ca_matrix::seeded_rng(5);
        let at = ca_matrix::random_uniform(k, m, &mut rng);
        let bt = ca_matrix::random_uniform(n, k, &mut rng);
        let c0 = ca_matrix::random_uniform(m, n, &mut rng);
        let mut serial = c0.clone();
        gemm(Trans::Yes, Trans::Yes, 2.0, at.view(), bt.view(), 1.0, serial.view_mut());
        let mut par = c0.clone();
        par_gemm(3, Trans::Yes, Trans::Yes, 2.0, at.view(), bt.view(), 1.0, par.view_mut());
        assert_eq!(par.as_slice(), serial.as_slice());
    }

    #[test]
    fn par_gemm_degenerate_shapes() {
        // Empty output: no-op.
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(0, 2);
        par_gemm(4, Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());
        // k == 0: pure beta scaling.
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        par_gemm(4, Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.5, c.view_mut());
        assert_eq!(c, Matrix::from_rows(2, 2, &[0.5, 1.0, 1.5, 2.0]));
    }

    #[test]
    fn packed_tile_path_matches_serial_gemm_block() {
        // pack_a_slab + pack_b_panel + gemm_packed (the DAG task bodies)
        // reproduce the serial result bitwise on each (slab, panel) tile.
        let (m, n, k) = (MC + 21, 2 * NC.min(96) + 13, KC + 31);
        let (a, b, c0) = case(m, n, k);
        let mut serial = c0.clone();
        gemm(Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, serial.view_mut());

        let mut tiled = c0.clone();
        let mut ic = 0;
        while ic < m {
            let mb = MC.min(m - ic);
            let mut apack = AlignedBuf::new();
            pack_a_slab(Trans::No, a.view(), ic, mb, &mut apack);
            assert!(apack.len() >= packed_a_len::<f64>(mb, k));
            let mut jc = 0;
            while jc < n {
                let nb = NC.min(n - jc);
                let mut bpack = AlignedBuf::new();
                pack_b_panel(Trans::No, b.view(), jc, nb, &mut bpack);
                assert!(bpack.len() >= packed_b_len::<f64>(nb, k));
                gemm_packed(-1.0, &apack, &bpack, k, 1.0, tiled.block_mut(ic, jc, mb, nb));
                jc += nb;
            }
            ic += mb;
        }
        assert_eq!(tiled.as_slice(), serial.as_slice());
    }

    #[test]
    fn packed_path_works_in_f32() {
        let (m, n, k) = (77, 45, 90);
        let mut rng = ca_matrix::seeded_rng(11);
        let a: Matrix<f32> = Matrix::from_f64(&ca_matrix::random_uniform(m, k, &mut rng));
        let b: Matrix<f32> = Matrix::from_f64(&ca_matrix::random_uniform(k, n, &mut rng));
        let c0: Matrix<f32> = Matrix::from_f64(&ca_matrix::random_uniform(m, n, &mut rng));

        let mut serial = c0.clone();
        gemm(Trans::No, Trans::No, 1.0f32, a.view(), b.view(), 1.0f32, serial.view_mut());

        let mut par = c0.clone();
        par_gemm(2, Trans::No, Trans::No, 1.0f32, a.view(), b.view(), 1.0f32, par.view_mut());
        assert_eq!(par.as_slice(), serial.as_slice());

        let mut apack = AlignedBuf::new();
        pack_a_slab(Trans::No, a.view(), 0, m, &mut apack);
        let mut bpack = AlignedBuf::new();
        pack_b_panel(Trans::No, b.view(), 0, n, &mut bpack);
        let mut packed = c0.clone();
        gemm_packed(1.0f32, &apack, &bpack, k, 1.0f32, packed.view_mut());
        assert_eq!(packed.as_slice(), serial.as_slice());
    }
}
