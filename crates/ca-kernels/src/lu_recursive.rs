//! Recursive LU with partial pivoting (`rgetf2`), after Toledo (1997) and
//! Gustavson (1997). Recursion on the column count turns almost all of the
//! elimination into BLAS3 (`trsm` + `gemm`) calls, which is why the paper
//! uses it as the sequential kernel inside TSLU leaves: "the best available
//! sequential algorithm can be used".

use crate::gemm::{gemm, Kernel, Trans};
use crate::lu_unblocked::{getf2, LuInfo};
use crate::trsm::trsm_left_lower_unit;
use ca_matrix::{MatViewMut, PivotSeq};

/// Column count at which recursion bottoms out into BLAS2 `getf2`.
const BASE_COLS: usize = 8;

/// Recursive Gaussian elimination with partial pivoting of an `m × n` view
/// (`m ≥ n` expected but not required), in place. Pivot indices are
/// view-local, exactly as [`getf2`] reports them.
pub fn rgetf2<T: Kernel>(a: MatViewMut<'_, T>) -> LuInfo {
    let m = a.nrows();
    let n = a.ncols();
    if n <= BASE_COLS || m <= 1 {
        return getf2(a);
    }
    // Never split past the row count: for wide views the factorization only
    // involves the first min(m, n) columns, the rest are updated in place.
    let n1 = (n / 2).min(m);

    let mut a = a;
    // Factor the left half A[:, 0..n1].
    let left_info = {
        let left = a.sub(0, 0, m, n1);
        rgetf2(left)
    };

    // Apply the left pivots to the right half.
    {
        let right = a.sub(0, n1, m, n - n1);
        left_info.pivots.apply(right);
    }

    // U12 := L11⁻¹ A12 ; A22 -= L21 * U12.
    {
        let (left_cols, right_cols) = a.rb().split_at_col(n1);
        let (mut u12, a22) = right_cols.split_at_row(n1);
        let l11 = left_cols.as_ref().sub(0, 0, n1, n1);
        trsm_left_lower_unit(l11, u12.rb());
        let l21 = left_cols.as_ref().sub(n1, 0, m - n1, n1);
        gemm(Trans::No, Trans::No, -T::ONE, l21, u12.as_ref(), T::ONE, a22);
    }

    // Factor the trailing block A[n1.., n1..].
    let lower_info = {
        let trailing = a.sub(n1, n1, m - n1, n - n1);
        rgetf2(trailing)
    };

    // Apply the trailing pivots (shifted by n1) to the left-bottom block.
    {
        let left_bottom = a.sub(n1, 0, m - n1, n1);
        lower_info.pivots.apply(left_bottom);
    }

    // Merge pivot sequences into view-local indices.
    let mut pivots = PivotSeq::new(0);
    pivots.ipiv.extend_from_slice(&left_info.pivots.ipiv);
    for &p in &lower_info.pivots.ipiv {
        pivots.ipiv.push(p + n1);
    }
    let first_zero_pivot = left_info
        .first_zero_pivot
        .or(lower_info.first_zero_pivot.map(|k| k + n1));
    LuInfo { pivots, first_zero_pivot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{lu_residual, Matrix};

    fn check(m: usize, n: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(seed));
        let mut a = a0.clone();
        let info = rgetf2(a.view_mut());
        assert!(info.first_zero_pivot.is_none(), "unexpected breakdown for {m}x{n}");
        assert_eq!(info.pivots.len(), m.min(n));
        let perm = info.pivots.to_permutation(m);
        let res = lu_residual(&a0, &perm, &a.unit_lower(), &a.upper());
        assert!(res < 1e-12, "residual {res} for {m}x{n}");
    }

    #[test]
    fn recursive_lu_various_shapes() {
        check(16, 16, 1);
        check(100, 40, 2);
        check(33, 17, 3);
        check(9, 9, 4); // just above base case
        check(8, 8, 5); // exactly base case
        check(200, 64, 6);
        check(13, 29, 7); // wide
    }

    #[test]
    fn recursive_matches_blas2_exactly() {
        // Same pivot choices and identical arithmetic order is not
        // guaranteed, but for generic matrices the pivot *sequence* is the
        // same because both pick the max-magnitude entry of the updated
        // column. Verify pivots and factors agree to roundoff.
        let m = 24;
        let n = 16;
        let a0 = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(8));
        let mut a_rec = a0.clone();
        let mut a_b2 = a0.clone();
        let i_rec = rgetf2(a_rec.view_mut());
        let i_b2 = getf2(a_b2.view_mut());
        assert_eq!(i_rec.pivots.ipiv, i_b2.pivots.ipiv);
        let diff = a_rec.sub_matrix(&a_b2);
        assert!(ca_matrix::norm_max(diff.view()) < 1e-12);
    }

    #[test]
    fn recursive_handles_singular_input() {
        let a0 = Matrix::from_fn(12, 12, |i, j| ((i + 1) * (j + 1)) as f64);
        let mut a = a0.clone();
        let info = rgetf2(a.view_mut());
        assert!(info.first_zero_pivot.is_some());
    }

    #[test]
    fn recursive_single_column() {
        let a0 = Matrix::from_rows(4, 1, &[1.0, -4.0, 2.0, 3.0]);
        let mut a = a0.clone();
        let info = rgetf2(a.view_mut());
        assert_eq!(info.pivots.ipiv, vec![1]);
        assert_eq!(a[(0, 0)], -4.0);
    }
}
