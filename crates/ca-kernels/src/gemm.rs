//! General matrix-matrix multiply (`dgemm`/`sgemm` equivalent).
//!
//! `gemm` computes `C := alpha * op(A) * op(B) + beta * C` for column-major
//! views, as a BLIS-style three-loop blocked algorithm around a
//! register-blocked `mr × nr` microkernel (Van Zee & van de Geijn, "BLIS: A
//! Framework for Rapidly Instantiating BLAS Functionality"):
//!
//! * the `jc`/`pc`/`ic` cache loops carve `op(B)` into `KC × NC` panels and
//!   `op(A)` into `MC × KC` blocks, packed into aligned micro-tiled scratch
//!   ([`ca_matrix::AlignedBuf`], reused per thread and per element type);
//! * both `Trans` flags are folded into the pack routines ([`crate::pack`]),
//!   so transposed operands — compact-WY applications in TSQR, `dtrsm`
//!   updates — run the same packed hot path as the trailing update;
//! * the `jr`/`ir` register loops ([`macro_kernel`]) drive the microkernel
//!   selected once per process by [`Kernel::spec`]: AVX-512F (16-row tiles),
//!   AVX2+FMA, or a portable scalar kernel — per element type, checked via
//!   `is_x86_feature_detected!`, overridable with `CA_KERNELS_FORCE_SCALAR`
//!   or `CA_KERNELS_BACKEND`;
//! * `m % mr` / `n % nr` remainders run the same full-size microkernel on
//!   zero-padded panels and land in C through a stack tile.
//!
//! The whole surface is generic over the sealed [`Scalar`] trait through
//! [`Kernel`] (implemented for `f32` and `f64`), with `f64` defaults so all
//! pre-existing call sites compile unchanged. The scheduler-parallel
//! decomposition of the same loops lives in [`crate::par_gemm`] and shares
//! [`macro_kernel`], which is what makes parallel results bitwise-identical
//! to this serial path. The pre-BLIS AXPY-loop kernel survives as
//! [`crate::gemm_axpy`] — the benchmark baseline and a second test oracle.

use crate::microkernel as mk;
use crate::pack::{pack_a, pack_b, PackTrans};
use ca_matrix::{AlignedBuf, MatView, MatViewMut, Scalar};
use core::cell::RefCell;
use std::sync::OnceLock;

/// f64 portable-tile height: C rows per microkernel call on the
/// scalar/AVX2 f64 path (the AVX-512 and f32 geometries differ — see
/// [`KernelSpec`]).
pub const MR: usize = mk::MR;
/// f64 portable-tile width (see [`MR`]).
pub const NR: usize = mk::NR;

/// Cache-block sizes for the packed path, tuned against the profiler's
/// per-kernel-class roofline attribution (see DESIGN.md §10): the packed A
/// block (`MC × KC` = 256 KiB at f64) fills most of a 512 KiB-class L2
/// while leaving room for the streaming B micro-panel; `KC` keeps one
/// micro-panel resident in L1 across the register loops; `NC` bounds the
/// packed B panel (`KC × NC` = 2 MiB at f64) to a per-core L3 share. The
/// same element counts are used for f32 (half the bytes: comfortably
/// cache-resident).
pub const MC: usize = 128;
/// `k`-dimension cache-block depth (see [`MC`]).
pub const KC: usize = 256;
/// `n`-dimension cache-block width (see [`MC`]).
pub const NC: usize = 1024;

/// Upper bound on `mr * nr` over every kernel geometry — sizes the stack
/// tile edge updates land in.
pub(crate) const MAX_TILE: usize = 128;

/// Whether an operand is used as stored or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl From<Trans> for PackTrans {
    fn from(t: Trans) -> Self {
        match t {
            Trans::No => PackTrans::No,
            Trans::Yes => PackTrans::Yes,
        }
    }
}

/// Microkernel backend, selected once per process (see [`gemm_backend`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar microkernel.
    Scalar,
    /// AVX2 + FMA (x86-64).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512F (x86-64), 16-row tiles.
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn backend_label(b: Backend) -> &'static str {
    match b {
        Backend::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => "avx2-fma",
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => "avx512f",
    }
}

fn backend_supported(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
    }
}

const ALL_BACKENDS: &[Backend] = &[
    #[cfg(target_arch = "x86_64")]
    Backend::Avx512,
    #[cfg(target_arch = "x86_64")]
    Backend::Avx2,
    Backend::Scalar,
];

fn active_backend() -> Backend {
    static CACHE: OnceLock<Backend> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let forced = match std::env::var("CA_KERNELS_FORCE_SCALAR") {
            Ok(v) => !v.is_empty() && v != "0",
            Err(_) => false,
        };
        if forced {
            return Backend::Scalar;
        }
        if let Ok(name) = std::env::var("CA_KERNELS_BACKEND") {
            // Pin a specific backend (CI dispatch matrix); silently fall
            // back to detection when the host can't run it.
            for &b in ALL_BACKENDS {
                if backend_label(b) == name && backend_supported(b) {
                    return b;
                }
            }
        }
        *ALL_BACKENDS
            .iter()
            .find(|&&b| backend_supported(b))
            .expect("scalar backend is always supported")
    })
}

/// One microkernel and its register-tile geometry. The packed-panel layout
/// (and therefore every pack-buffer size) is a function of `(mr, nr)`, so
/// the spec travels together through the driver, [`crate::par_gemm`], and
/// the scheduler sub-DAG builders.
pub struct KernelSpec<T: Scalar> {
    /// Tile height: rows of C per microkernel call (packed-A panel height).
    pub mr: usize,
    /// Tile width: columns of C per microkernel call (packed-B panel width).
    pub nr: usize,
    /// Kernel name with geometry, e.g. `"avx512f-16x4-f64"`.
    pub name: &'static str,
    /// The microkernel.
    ///
    /// # Safety
    /// `(kc, alpha, a, b, c, ldc)`: `a` holds `mr*kc` packed elements
    /// (64-byte-aligned base for SIMD kernels), `b` holds `nr*kc`, `c`
    /// points to an `mr × nr` column-major tile with `ldc >= mr` valid for
    /// reads and writes, and the CPU must support the kernel's features.
    pub kernel: unsafe fn(usize, T, *const T, *const T, *mut T, usize),
}

static F64_SCALAR: KernelSpec<f64> =
    KernelSpec { mr: mk::MR, nr: mk::NR, name: "scalar-8x4-f64", kernel: mk::kernel_scalar_f64 };
static F32_SCALAR: KernelSpec<f32> = KernelSpec {
    mr: mk::MR_F32,
    nr: mk::NR_F32,
    name: "scalar-8x8-f32",
    kernel: mk::kernel_scalar_f32,
};
#[cfg(target_arch = "x86_64")]
static F64_AVX2: KernelSpec<f64> =
    KernelSpec { mr: mk::MR, nr: mk::NR, name: "avx2-fma-8x4-f64", kernel: mk::kernel_avx2_f64 };
#[cfg(target_arch = "x86_64")]
static F32_AVX2: KernelSpec<f32> = KernelSpec {
    mr: mk::MR_F32,
    nr: mk::NR_F32,
    name: "avx2-fma-8x8-f32",
    kernel: mk::kernel_avx2_f32,
};
#[cfg(target_arch = "x86_64")]
static F64_AVX512: KernelSpec<f64> = KernelSpec {
    mr: mk::MR_512,
    nr: mk::NR_512_F64,
    name: "avx512f-16x4-f64",
    kernel: mk::kernel_avx512_f64,
};
#[cfg(target_arch = "x86_64")]
static F32_AVX512: KernelSpec<f32> = KernelSpec {
    mr: mk::MR_512,
    nr: mk::NR_512_F32,
    name: "avx512f-16x8-f32",
    kernel: mk::kernel_avx512_f32,
};

/// An element type with a full microkernel dispatch table (`f32`, `f64`).
///
/// Extends the sealed [`Scalar`] trait, so it cannot be implemented outside
/// this workspace; the methods are dispatch plumbing that kernel entry
/// points ([`gemm`], [`crate::par_gemm`]) use internally.
pub trait Kernel: Scalar {
    /// The spec for a given backend (the scalar one always exists; SIMD
    /// specs exist whenever compiled for x86-64 — the caller checks CPU
    /// support before running them).
    #[doc(hidden)]
    fn spec_of(backend: Backend) -> &'static KernelSpec<Self>;

    /// Runs `f` with this thread's packing scratch for this element type.
    #[doc(hidden)]
    fn with_pack_bufs<R>(f: impl FnOnce(&mut AlignedBuf<Self>, &mut AlignedBuf<Self>) -> R) -> R;

    /// The process-wide dispatched spec (cached feature detection + env
    /// overrides).
    fn spec() -> &'static KernelSpec<Self> {
        Self::spec_of(active_backend())
    }

    /// The portable scalar spec (always safe to run).
    fn scalar_spec() -> &'static KernelSpec<Self> {
        Self::spec_of(Backend::Scalar)
    }
}

macro_rules! impl_kernel {
    ($t:ty, $scalar:ident, $avx2:ident, $avx512:ident) => {
        impl Kernel for $t {
            fn spec_of(backend: Backend) -> &'static KernelSpec<$t> {
                match backend {
                    Backend::Scalar => &$scalar,
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx2 => &$avx2,
                    #[cfg(target_arch = "x86_64")]
                    Backend::Avx512 => &$avx512,
                }
            }

            fn with_pack_bufs<R>(
                f: impl FnOnce(&mut AlignedBuf<$t>, &mut AlignedBuf<$t>) -> R,
            ) -> R {
                thread_local! {
                    /// Per-thread packing scratch (A block, B panel), reused
                    /// across calls so task-sized gemms don't pay an
                    /// allocation each.
                    static BUFS: RefCell<(AlignedBuf<$t>, AlignedBuf<$t>)> =
                        const { RefCell::new((AlignedBuf::new(), AlignedBuf::new())) };
                }
                BUFS.with(|bufs| {
                    let mut bufs = bufs.borrow_mut();
                    let (a_buf, b_buf) = &mut *bufs;
                    f(a_buf, b_buf)
                })
            }
        }
    };
}

impl_kernel!(f64, F64_SCALAR, F64_AVX2, F64_AVX512);
impl_kernel!(f32, F32_SCALAR, F32_AVX2, F32_AVX512);

/// Name of the microkernel backend `gemm` dispatches to on this host:
/// `"avx512f"`, `"avx2-fma"` or `"scalar"`. Scalar is selected when the CPU
/// lacks the SIMD features or when the `CA_KERNELS_FORCE_SCALAR`
/// environment variable is set (to anything but `0`);
/// `CA_KERNELS_BACKEND=<name>` pins a specific supported backend. The
/// choice is made once per process and shared by both element types.
pub fn gemm_backend() -> &'static str {
    backend_label(active_backend())
}

/// Full name (with tile geometry) of the dispatched microkernel for `T`,
/// e.g. `"avx512f-16x8-f32"`.
pub fn gemm_kernel_name<T: Kernel>() -> &'static str {
    T::spec().name
}

/// Names of every microkernel backend this host can actually run, best
/// first. Drives the differential conformance matrix in the test suite.
pub fn gemm_available_backends() -> Vec<&'static str> {
    ALL_BACKENDS.iter().copied().filter(|&b| backend_supported(b)).map(backend_label).collect()
}

#[inline]
pub(crate) fn op_shape<T: Scalar>(t: Trans, a: MatView<'_, T>) -> (usize, usize) {
    match t {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    }
}

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// # Panics
/// If the shapes of `op(A)` (`m × k`), `op(B)` (`k × n`) and `C` (`m × n`)
/// are inconsistent.
pub fn gemm<T: Kernel>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    c: MatViewMut<'_, T>,
) {
    gemm_on(T::spec(), ta, tb, alpha, a, b, beta, c);
}

/// [`gemm`] forced onto the portable scalar microkernel, regardless of CPU
/// features or `CA_KERNELS_FORCE_SCALAR`. A testing hook: the conformance
/// suite and the ASan job use it to exercise the fallback path in-process
/// next to the dispatched one.
pub fn gemm_force_scalar<T: Kernel>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    c: MatViewMut<'_, T>,
) {
    gemm_on(T::scalar_spec(), ta, tb, alpha, a, b, beta, c);
}

/// [`gemm`] pinned to a named backend from [`gemm_available_backends`] —
/// the in-process hook behind the backend × precision conformance matrix.
///
/// # Panics
/// If `name` is not a backend this host supports.
#[allow(clippy::too_many_arguments)] // BLAS-style call convention
pub fn gemm_with_backend<T: Kernel>(
    name: &str,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    c: MatViewMut<'_, T>,
) {
    let backend = *ALL_BACKENDS
        .iter()
        .find(|&&b| backend_label(b) == name && backend_supported(b))
        .unwrap_or_else(|| panic!("backend {name:?} not available on this host"));
    gemm_on(T::spec_of(backend), ta, tb, alpha, a, b, beta, c);
}

/// Runs the `jr`/`ir` register loops of one packed cache block:
/// `C[0..mb, 0..nb] += alpha * Apack · Bpack` with `C` addressed through
/// `(cbase, ldc)`.
///
/// This is the single code path every GEMM entry funnels into — the serial
/// driver below, [`crate::par_gemm`], and the scheduler sub-DAG tile tasks
/// — which is what makes their results bitwise-identical: same packed
/// layouts, same microkernel, same per-element operation order.
///
/// # Safety
/// `apack` holds the `mb × kcb` A block packed for `spec` (at least
/// `mb.next_multiple_of(spec.mr) * kcb` elements, 64-byte-aligned base for
/// SIMD specs), `bpack` the `kcb × nb` B block (at least
/// `kcb * nb.next_multiple_of(spec.nr)`), `cbase` points to an `mb × nb`
/// column-major window with leading dimension `ldc` valid for reads and
/// writes, and the CPU must support `spec`'s features.
#[allow(clippy::too_many_arguments)] // BLAS-style call convention
pub(crate) unsafe fn macro_kernel<T: Scalar>(
    spec: &KernelSpec<T>,
    mb: usize,
    nb: usize,
    kcb: usize,
    alpha: T,
    apack: &[T],
    bpack: &[T],
    cbase: *mut T,
    ldc: usize,
) {
    let (mr, nr) = (spec.mr, spec.nr);
    debug_assert!(apack.len() >= mb.next_multiple_of(mr) * kcb);
    debug_assert!(bpack.len() >= kcb * nb.next_multiple_of(nr));
    let mut jr = 0;
    while jr < nb {
        let nrb = nr.min(nb - jr);
        let b_panel = bpack[(jr / nr) * nr * kcb..].as_ptr();
        let mut ir = 0;
        while ir < mb {
            let mrb = mr.min(mb - ir);
            let a_panel = apack[(ir / mr) * mr * kcb..].as_ptr();
            // SAFETY: panels hold mr*kcb / nr*kcb packed (zero-padded)
            // elements; the A panel starts at a multiple of mr·kcb elements
            // inside a 64-byte-aligned buffer, so SIMD alignment holds.
            unsafe {
                if mrb == mr && nrb == nr {
                    // Full tile: C window (ir, jr) is mr×nr, in bounds by
                    // the loop guards.
                    let cp = cbase.add(ir + jr * ldc);
                    (spec.kernel)(kcb, alpha, a_panel, b_panel, cp, ldc);
                } else {
                    // Edge tile: land in a stack tile, then fold the valid
                    // mrb×nrb corner into C.
                    let mut tile = [T::ZERO; MAX_TILE];
                    (spec.kernel)(kcb, alpha, a_panel, b_panel, tile.as_mut_ptr(), mr);
                    for j in 0..nrb {
                        for i in 0..mrb {
                            *cbase.add(ir + i + (jr + j) * ldc) += tile[j * mr + i];
                        }
                    }
                }
            }
            ir += mr;
        }
        jr += nr;
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the 8-operand BLAS dgemm surface
fn gemm_on<T: Kernel>(
    spec: &KernelSpec<T>,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    mut c: MatViewMut<'_, T>,
) {
    let (m, ka) = op_shape(ta, a);
    let (kb, n) = op_shape(tb, b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: op(A) is {m}x{ka}, op(B) is {kb}x{n}");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C column mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    scale(beta, c.rb());
    if alpha == T::ZERO || k == 0 {
        return;
    }

    let tap: PackTrans = ta.into();
    let tbp: PackTrans = tb.into();
    let (mr, nr) = (spec.mr, spec.nr);

    T::with_pack_bufs(|a_buf, b_buf| {
        let apack = a_buf.scratch(MC.min(m).next_multiple_of(mr) * KC.min(k));
        let bpack = b_buf.scratch(KC.min(k) * NC.min(n).next_multiple_of(nr));
        let ldc = c.ld();
        let cbase = c.as_mut_ptr();

        let mut jc = 0;
        while jc < n {
            let nb = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kcb = KC.min(k - pc);
                pack_b(tbp, b, pc, kcb, jc, nb, bpack, nr);
                let mut ic = 0;
                while ic < m {
                    let mb = MC.min(m - ic);
                    pack_a(tap, a, ic, mb, pc, kcb, apack, mr);
                    // SAFETY: packed panels were just filled for `spec`'s
                    // geometry; the C window (ic, jc)+(mb × nb) is in bounds
                    // by the loop guards; specs with SIMD kernels are only
                    // reachable through dispatch or an availability check.
                    unsafe {
                        macro_kernel(
                            spec,
                            mb,
                            nb,
                            kcb,
                            alpha,
                            apack,
                            bpack,
                            cbase.add(ic + jc * ldc),
                            ldc,
                        );
                    }
                    ic += mb;
                }
                pc += kcb;
            }
            jc += nb;
        }
    });
}

/// `C := beta * C` (handles `beta == 0` without reading C).
pub(crate) fn scale<T: Scalar>(beta: T, mut c: MatViewMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    for j in 0..c.ncols() {
        let col = c.col_mut(j);
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else {
            for x in col {
                *x *= beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::Matrix;

    fn reference(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &Matrix) -> Matrix {
        let oa = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let ob = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let ab = oa.matmul(&ob);
        Matrix::from_fn(c.nrows(), c.ncols(), |i, j| beta * c[(i, j)] + alpha * ab[(i, j)])
    }

    fn check(ta: Trans, tb: Trans, m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let mut rng = ca_matrix::seeded_rng(m as u64 * 31 + n as u64 * 7 + k as u64);
        let (ar, ac) = match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = ca_matrix::random_uniform(ar, ac, &mut rng);
        let b = ca_matrix::random_uniform(br, bc, &mut rng);
        let c0 = ca_matrix::random_uniform(m, n, &mut rng);
        let expect = reference(ta, tb, alpha, &a, &b, beta, &c0);
        for backend in gemm_available_backends() {
            let mut c = c0.clone();
            gemm_with_backend(backend, ta, tb, alpha, a.view(), b.view(), beta, c.view_mut());
            let diff = c.sub_matrix(&expect);
            let err = ca_matrix::norm_max(diff.view());
            assert!(
                err < 1e-12 * (k.max(1) as f64),
                "error {err} for {ta:?}{tb:?} {m}x{n}x{k} backend={backend}"
            );
        }
    }

    #[test]
    fn nn_small_and_odd_sizes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (4, 4, 4), (5, 3, 9), (17, 13, 11)] {
            check(Trans::No, Trans::No, m, n, k, 1.0, 1.0);
        }
    }

    #[test]
    fn nn_crosses_cache_block_boundaries() {
        check(Trans::No, Trans::No, MC + 7, 19, KC + 5, 1.0, 0.0);
        check(Trans::No, Trans::No, 33, NC + 3, 9, -0.5, 2.0);
    }

    #[test]
    fn nn_crosses_register_block_boundaries() {
        // Straddle every geometry's tile edges, including AVX-512's 16-row
        // tiles.
        for &m in &[MR - 1, MR, MR + 1, 2 * MR - 1, 2 * MR + 1] {
            for &n in &[NR - 1, NR, NR + 1, 2 * NR + 1] {
                check(Trans::No, Trans::No, m, n, 5, 1.0, 1.0);
            }
        }
    }

    #[test]
    fn transposed_variants() {
        check(Trans::Yes, Trans::No, 6, 8, 10, 1.0, 1.0);
        check(Trans::No, Trans::Yes, 6, 8, 10, 2.0, -1.0);
        check(Trans::Yes, Trans::Yes, 7, 5, 9, -1.0, 0.5);
        // Transposed operands crossing the register blocking.
        check(Trans::Yes, Trans::No, MR + 3, NR + 2, 21, 1.0, 0.0);
        check(Trans::No, Trans::Yes, 2 * MR + 1, 2 * NR + 3, 13, -1.0, 1.0);
    }

    #[test]
    fn f32_gemm_matches_oracle_on_every_backend() {
        let (m, n, k) = (37, 21, 29);
        let mut rng = ca_matrix::seeded_rng(99);
        let a64 = ca_matrix::random_uniform(m, k, &mut rng);
        let b64 = ca_matrix::random_uniform(k, n, &mut rng);
        let c64 = ca_matrix::random_uniform(m, n, &mut rng);
        let a: Matrix<f32> = Matrix::from_f64(&a64);
        let b: Matrix<f32> = Matrix::from_f64(&b64);
        let c0: Matrix<f32> = Matrix::from_f64(&c64);
        let expect = reference(Trans::No, Trans::No, 1.0, &a.to_f64(), &b.to_f64(), -0.5, &c0.to_f64());
        for backend in gemm_available_backends() {
            let mut c = c0.clone();
            gemm_with_backend(backend, Trans::No, Trans::No, 1.0f32, a.view(), b.view(), -0.5f32, c.view_mut());
            let err = ca_matrix::norm_max(c.to_f64().sub_matrix(&expect).view());
            assert!(
                err < 8.0 * (k as f64 + 4.0) * f32::EPSILON as f64,
                "f32 error {err} on backend={backend}"
            );
        }
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let mut rng = ca_matrix::seeded_rng(9);
        let a = ca_matrix::random_uniform(4, 4, &mut rng);
        let b = ca_matrix::random_uniform(4, 4, &mut rng);
        let c0 = ca_matrix::random_uniform(4, 4, &mut rng);
        let mut c = c0.clone();
        gemm(Trans::No, Trans::No, 0.0, a.view(), b.view(), 2.0, c.view_mut());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c[(i, j)], 2.0 * c0[(i, j)]);
            }
        }
    }

    #[test]
    fn beta_zero_ignores_nan_in_c() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_rows(2, 2, &[f64::NAN, f64::NAN, f64::NAN, f64::NAN]);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view_mut());
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let mut c = Matrix::zeros(0, 4);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = ca_matrix::random_uniform(2, 4, &mut ca_matrix::seeded_rng(1));
        let c0 = c.clone();
        // k == 0: C := beta * C
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());
        assert_eq!(c, c0);
    }

    #[test]
    fn strided_views_multiply_correctly() {
        // Operate on interior blocks of larger matrices so ld != rows.
        let mut rng = ca_matrix::seeded_rng(77);
        let big_a = ca_matrix::random_uniform(10, 10, &mut rng);
        let big_b = ca_matrix::random_uniform(10, 10, &mut rng);
        let mut big_c = Matrix::zeros(10, 10);
        let a = big_a.block(2, 3, 4, 5);
        let b = big_b.block(1, 2, 5, 3);
        gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, big_c.block_mut(5, 6, 4, 3));

        let a_own = Matrix::from_fn(4, 5, |i, j| big_a[(2 + i, 3 + j)]);
        let b_own = Matrix::from_fn(5, 3, |i, j| big_b[(1 + i, 2 + j)]);
        let expect = a_own.matmul(&b_own);
        for i in 0..4 {
            for j in 0..3 {
                assert!((big_c[(5 + i, 6 + j)] - expect[(i, j)]).abs() < 1e-13);
            }
        }
        // Untouched area stays zero.
        assert_eq!(big_c[(0, 0)], 0.0);
        assert_eq!(big_c[(4, 6)], 0.0);
    }

    #[test]
    fn repeated_calls_are_bitwise_identical() {
        let mut rng = ca_matrix::seeded_rng(1234);
        let a = ca_matrix::random_uniform(37, 29, &mut rng);
        let b = ca_matrix::random_uniform(29, 23, &mut rng);
        let c0 = ca_matrix::random_uniform(37, 23, &mut rng);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), 0.5, c1.view_mut());
        gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), 0.5, c2.view_mut());
        assert_eq!(c1.as_slice(), c2.as_slice());
    }

    #[test]
    fn backend_name_is_reported() {
        let name = gemm_backend();
        assert!(
            name == "avx512f" || name == "avx2-fma" || name == "scalar",
            "unexpected backend {name}"
        );
        assert!(gemm_available_backends().contains(&name));
        assert!(gemm_kernel_name::<f64>().contains("f64"));
        assert!(gemm_kernel_name::<f32>().contains("f32"));
    }
}
