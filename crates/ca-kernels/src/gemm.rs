//! General matrix-matrix multiply (`dgemm` equivalent).
//!
//! `gemm` computes `C := alpha * op(A) * op(B) + beta * C` for column-major
//! views, as a BLIS-style three-loop blocked algorithm around a
//! register-blocked `MR × NR` microkernel (Van Zee & van de Geijn, "BLIS: A
//! Framework for Rapidly Instantiating BLAS Functionality"):
//!
//! * the `jc`/`pc`/`ic` cache loops carve `op(B)` into `KC × NC` panels and
//!   `op(A)` into `MC × KC` blocks, packed into aligned micro-tiled scratch
//!   ([`ca_matrix::AlignedBuf`], reused per thread);
//! * both `Trans` flags are folded into the pack routines ([`crate::pack`]),
//!   so transposed operands — compact-WY applications in TSQR, `dtrsm`
//!   updates — run the same packed hot path as the trailing update;
//! * the `jr`/`ir` register loops drive an `8 × 4` f64 microkernel: AVX2 +
//!   FMA intrinsics when the CPU supports them (checked once at runtime via
//!   `is_x86_feature_detected!`), a portable scalar kernel otherwise or when
//!   `CA_KERNELS_FORCE_SCALAR` is set in the environment;
//! * `m % MR` / `n % NR` remainders run the same full-size microkernel on
//!   zero-padded panels and land in C through a stack tile.
//!
//! The pre-BLIS 4-way-unrolled AXPY implementation survives as
//! [`gemm_axpy`] — the baseline the `gemm_sweep` bench (BENCH_gemm.json)
//! compares against, and a second oracle for the conformance suite.

use crate::microkernel::{kernel_scalar, MR as MR_, NR as NR_};
use crate::pack::{pack_a, pack_b, PackTrans};
use ca_matrix::{AlignedBuf, MatView, MatViewMut};
use core::cell::RefCell;
use std::sync::OnceLock;

/// Microkernel tile height: C rows computed per microkernel call.
pub const MR: usize = MR_;
/// Microkernel tile width: C columns computed per microkernel call.
pub const NR: usize = NR_;

/// Cache-block sizes for the packed path, tuned against the profiler's
/// per-kernel-class roofline attribution (see DESIGN.md §10): the packed A
/// block (`MC × KC` = 256 KiB) fills most of a 512 KiB-class L2 while
/// leaving room for the streaming B micro-panel; `KC` keeps one `MR`- or
/// `NR`-wide micro-panel (`KC·MR·8` = 16 KiB) resident in L1 across the
/// register loops; `NC` bounds the packed B panel (`KC × NC` = 2 MiB) to a
/// per-core L3 share.
pub const MC: usize = 128;
/// `k`-dimension cache-block depth (see [`MC`]).
pub const KC: usize = 256;
/// `n`-dimension cache-block width (see [`MC`]).
pub const NC: usize = 1024;

/// Whether an operand is used as stored or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Microkernel backend selected at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Backend {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

fn active_backend() -> Backend {
    static CACHE: OnceLock<Backend> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let forced = match std::env::var("CA_KERNELS_FORCE_SCALAR") {
            Ok(v) => !v.is_empty() && v != "0",
            Err(_) => false,
        };
        if forced {
            return Backend::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Backend::Avx2;
        }
        Backend::Scalar
    })
}

/// Name of the microkernel backend `gemm` dispatches to on this host:
/// `"avx2-fma"` or `"scalar"`. Scalar is selected when the CPU lacks
/// AVX2/FMA or when the `CA_KERNELS_FORCE_SCALAR` environment variable is
/// set (to anything but `0`); the choice is made once per process.
pub fn gemm_backend() -> &'static str {
    match active_backend() {
        Backend::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => "avx2-fma",
    }
}

/// Dispatches one `MR × NR` microkernel tile on the chosen backend.
///
/// # Safety
/// Panel and C-tile requirements of [`kernel_scalar`]; for the AVX2 backend
/// the caller (the dispatch logic) guarantees the CPU supports AVX2+FMA and
/// `a` is 32-byte aligned (packed panels in an [`AlignedBuf`]).
#[inline]
unsafe fn run_kernel(
    backend: Backend,
    kc: usize,
    alpha: f64,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    ldc: usize,
) {
    match backend {
        // SAFETY: forwarded caller contract.
        Backend::Scalar => unsafe { kernel_scalar(kc, alpha, a, b, c, ldc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded caller contract; Avx2 is only ever constructed
        // after `is_x86_feature_detected!("avx2") && ("fma")`.
        Backend::Avx2 => unsafe { crate::microkernel::kernel_avx2(kc, alpha, a, b, c, ldc) },
    }
}

#[inline]
pub(crate) fn op_shape(t: Trans, a: MatView<'_>) -> (usize, usize) {
    match t {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    }
}

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// # Panics
/// If the shapes of `op(A)` (`m × k`), `op(B)` (`k × n`) and `C` (`m × n`)
/// are inconsistent.
pub fn gemm(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f64,
    c: MatViewMut<'_>,
) {
    gemm_on(active_backend(), ta, tb, alpha, a, b, beta, c);
}

/// [`gemm`] forced onto the portable scalar microkernel, regardless of CPU
/// features or `CA_KERNELS_FORCE_SCALAR`. A testing hook: the conformance
/// suite and the ASan job use it to exercise the fallback path in-process
/// next to the dispatched one.
pub fn gemm_force_scalar(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f64,
    c: MatViewMut<'_>,
) {
    gemm_on(Backend::Scalar, ta, tb, alpha, a, b, beta, c);
}

#[allow(clippy::too_many_arguments)] // mirrors the 8-operand BLAS dgemm surface
fn gemm_on(
    backend: Backend,
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f64,
    mut c: MatViewMut<'_>,
) {
    let (m, ka) = op_shape(ta, a);
    let (kb, n) = op_shape(tb, b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: op(A) is {m}x{ka}, op(B) is {kb}x{n}");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C column mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    scale(beta, c.rb());
    if alpha == 0.0 || k == 0 {
        return;
    }

    let tap = match ta {
        Trans::No => PackTrans::No,
        Trans::Yes => PackTrans::Yes,
    };
    let tbp = match tb {
        Trans::No => PackTrans::No,
        Trans::Yes => PackTrans::Yes,
    };

    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (a_buf, b_buf) = &mut *bufs;
        let apack = a_buf.scratch(MC.min(m).next_multiple_of(MR) * KC.min(k));
        let bpack = b_buf.scratch(KC.min(k) * NC.min(n).next_multiple_of(NR));
        let ldc = c.ld();
        let cbase = c.as_mut_ptr();

        let mut jc = 0;
        while jc < n {
            let nb = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kcb = KC.min(k - pc);
                pack_b(tbp, b, pc, kcb, jc, nb, bpack);
                let mut ic = 0;
                while ic < m {
                    let mb = MC.min(m - ic);
                    pack_a(tap, a, ic, mb, pc, kcb, apack);
                    let mut jr = 0;
                    while jr < nb {
                        let nr = NR.min(nb - jr);
                        let b_panel = bpack[(jr / NR) * NR * kcb..].as_ptr();
                        let mut ir = 0;
                        while ir < mb {
                            let mr = MR.min(mb - ir);
                            let a_panel = apack[(ir / MR) * MR * kcb..].as_ptr();
                            // SAFETY: panels hold MR*kcb / NR*kcb packed
                            // (zero-padded) elements; the A panel starts at
                            // a multiple of MR·kcb f64s inside a 64-byte-
                            // aligned AlignedBuf, so it is 32-byte aligned.
                            unsafe {
                                if mr == MR && nr == NR {
                                    // Full tile: C window (ic+ir, jc+jr) is
                                    // MR×NR, in bounds by the loop guards.
                                    let cp = cbase.add(ic + ir + (jc + jr) * ldc);
                                    run_kernel(backend, kcb, alpha, a_panel, b_panel, cp, ldc);
                                } else {
                                    // Edge tile: land in a stack tile, then
                                    // fold the valid mr×nr corner into C.
                                    let mut tile = [0.0f64; MR * NR];
                                    run_kernel(
                                        backend,
                                        kcb,
                                        alpha,
                                        a_panel,
                                        b_panel,
                                        tile.as_mut_ptr(),
                                        MR,
                                    );
                                    for j in 0..nr {
                                        for i in 0..mr {
                                            *cbase.add(ic + ir + i + (jc + jr + j) * ldc) +=
                                                tile[j * MR + i];
                                        }
                                    }
                                }
                            }
                            ir += MR;
                        }
                        jr += NR;
                    }
                    ic += mb;
                }
                pc += kcb;
            }
            jc += nb;
        }
    });
}

thread_local! {
    /// Per-thread packing scratch (A block, B panel), reused across calls so
    /// task-sized gemms don't pay an allocation each.
    static PACK_BUFS: RefCell<(AlignedBuf, AlignedBuf)> =
        const { RefCell::new((AlignedBuf::new(), AlignedBuf::new())) };
}

/// `C := beta * C` (handles `beta == 0` without reading C).
pub(crate) fn scale(beta: f64, mut c: MatViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    for j in 0..c.ncols() {
        let col = c.col_mut(j);
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for x in col {
                *x *= beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::Matrix;

    fn reference(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &Matrix) -> Matrix {
        let oa = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let ob = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let ab = oa.matmul(&ob);
        Matrix::from_fn(c.nrows(), c.ncols(), |i, j| beta * c[(i, j)] + alpha * ab[(i, j)])
    }

    fn check(ta: Trans, tb: Trans, m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let mut rng = ca_matrix::seeded_rng(m as u64 * 31 + n as u64 * 7 + k as u64);
        let (ar, ac) = match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = ca_matrix::random_uniform(ar, ac, &mut rng);
        let b = ca_matrix::random_uniform(br, bc, &mut rng);
        let c0 = ca_matrix::random_uniform(m, n, &mut rng);
        let expect = reference(ta, tb, alpha, &a, &b, beta, &c0);
        for forced_scalar in [false, true] {
            let mut c = c0.clone();
            if forced_scalar {
                gemm_force_scalar(ta, tb, alpha, a.view(), b.view(), beta, c.view_mut());
            } else {
                gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view_mut());
            }
            let diff = c.sub_matrix(&expect);
            let err = ca_matrix::norm_max(diff.view());
            assert!(
                err < 1e-12 * (k.max(1) as f64),
                "error {err} for {ta:?}{tb:?} {m}x{n}x{k} scalar={forced_scalar}"
            );
        }
    }

    #[test]
    fn nn_small_and_odd_sizes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (4, 4, 4), (5, 3, 9), (17, 13, 11)] {
            check(Trans::No, Trans::No, m, n, k, 1.0, 1.0);
        }
    }

    #[test]
    fn nn_crosses_cache_block_boundaries() {
        check(Trans::No, Trans::No, MC + 7, 19, KC + 5, 1.0, 0.0);
        check(Trans::No, Trans::No, 33, NC + 3, 9, -0.5, 2.0);
    }

    #[test]
    fn nn_crosses_register_block_boundaries() {
        for &m in &[MR - 1, MR, MR + 1, 2 * MR - 1] {
            for &n in &[NR - 1, NR, NR + 1, 2 * NR + 1] {
                check(Trans::No, Trans::No, m, n, 5, 1.0, 1.0);
            }
        }
    }

    #[test]
    fn transposed_variants() {
        check(Trans::Yes, Trans::No, 6, 8, 10, 1.0, 1.0);
        check(Trans::No, Trans::Yes, 6, 8, 10, 2.0, -1.0);
        check(Trans::Yes, Trans::Yes, 7, 5, 9, -1.0, 0.5);
        // Transposed operands crossing the register blocking.
        check(Trans::Yes, Trans::No, MR + 3, NR + 2, 21, 1.0, 0.0);
        check(Trans::No, Trans::Yes, 2 * MR + 1, 2 * NR + 3, 13, -1.0, 1.0);
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let mut rng = ca_matrix::seeded_rng(9);
        let a = ca_matrix::random_uniform(4, 4, &mut rng);
        let b = ca_matrix::random_uniform(4, 4, &mut rng);
        let c0 = ca_matrix::random_uniform(4, 4, &mut rng);
        let mut c = c0.clone();
        gemm(Trans::No, Trans::No, 0.0, a.view(), b.view(), 2.0, c.view_mut());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c[(i, j)], 2.0 * c0[(i, j)]);
            }
        }
    }

    #[test]
    fn beta_zero_ignores_nan_in_c() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_rows(2, 2, &[f64::NAN, f64::NAN, f64::NAN, f64::NAN]);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view_mut());
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let mut c = Matrix::zeros(0, 4);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = ca_matrix::random_uniform(2, 4, &mut ca_matrix::seeded_rng(1));
        let c0 = c.clone();
        // k == 0: C := beta * C
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());
        assert_eq!(c, c0);
    }

    #[test]
    fn strided_views_multiply_correctly() {
        // Operate on interior blocks of larger matrices so ld != rows.
        let mut rng = ca_matrix::seeded_rng(77);
        let big_a = ca_matrix::random_uniform(10, 10, &mut rng);
        let big_b = ca_matrix::random_uniform(10, 10, &mut rng);
        let mut big_c = Matrix::zeros(10, 10);
        let a = big_a.block(2, 3, 4, 5);
        let b = big_b.block(1, 2, 5, 3);
        gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, big_c.block_mut(5, 6, 4, 3));

        let a_own = Matrix::from_fn(4, 5, |i, j| big_a[(2 + i, 3 + j)]);
        let b_own = Matrix::from_fn(5, 3, |i, j| big_b[(1 + i, 2 + j)]);
        let expect = a_own.matmul(&b_own);
        for i in 0..4 {
            for j in 0..3 {
                assert!((big_c[(5 + i, 6 + j)] - expect[(i, j)]).abs() < 1e-13);
            }
        }
        // Untouched area stays zero.
        assert_eq!(big_c[(0, 0)], 0.0);
        assert_eq!(big_c[(4, 6)], 0.0);
    }

    #[test]
    fn repeated_calls_are_bitwise_identical() {
        let mut rng = ca_matrix::seeded_rng(1234);
        let a = ca_matrix::random_uniform(37, 29, &mut rng);
        let b = ca_matrix::random_uniform(29, 23, &mut rng);
        let c0 = ca_matrix::random_uniform(37, 23, &mut rng);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), 0.5, c1.view_mut());
        gemm(Trans::No, Trans::No, 1.5, a.view(), b.view(), 0.5, c2.view_mut());
        assert_eq!(c1.as_slice(), c2.as_slice());
    }

    #[test]
    fn backend_name_is_reported() {
        let name = gemm_backend();
        assert!(name == "avx2-fma" || name == "scalar", "unexpected backend {name}");
    }
}
