//! General matrix-matrix multiply (`dgemm` equivalent).
//!
//! `gemm` computes `C := alpha * op(A) * op(B) + beta * C` for column-major
//! views. The `NoTrans × NoTrans` case — the trailing-matrix update in every
//! factorization here — runs a cache-blocked loop nest whose inner kernel is
//! a 4-way unrolled sequence of column AXPYs; columns are contiguous in
//! column-major storage, so the compiler autovectorizes the inner loop.
//! The transposed cases use dot-product loop orders and only appear on small
//! operands (compact-WY applications), where they are not the bottleneck.

use ca_matrix::{MatView, MatViewMut};

/// Whether an operand is used as stored or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Cache-block sizes for the `NoTrans × NoTrans` path.
/// `KC * MC` doubles of A (~256 KiB) target L2; `KC` rows of B stream.
const MC: usize = 256;
const KC: usize = 128;
const NC: usize = 512;

#[inline]
fn op_shape(t: Trans, a: MatView<'_>) -> (usize, usize) {
    match t {
        Trans::No => (a.nrows(), a.ncols()),
        Trans::Yes => (a.ncols(), a.nrows()),
    }
}

/// `C := alpha * op(A) * op(B) + beta * C`.
///
/// # Panics
/// If the shapes of `op(A)` (`m × k`), `op(B)` (`k × n`) and `C` (`m × n`)
/// are inconsistent.
pub fn gemm(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatView<'_>,
    b: MatView<'_>,
    beta: f64,
    mut c: MatViewMut<'_>,
) {
    let (m, ka) = op_shape(ta, a);
    let (kb, n) = op_shape(tb, b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: op(A) is {m}x{ka}, op(B) is {kb}x{n}");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C column mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    if alpha == 0.0 || k == 0 {
        scale(beta, c.rb());
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => gemm_nn(alpha, a, b, beta, c),
        (Trans::Yes, Trans::No) => gemm_tn(alpha, a, b, beta, c),
        (Trans::No, Trans::Yes) => gemm_nt(alpha, a, b, beta, c),
        (Trans::Yes, Trans::Yes) => gemm_tt(alpha, a, b, beta, c),
    }
}

/// `C := beta * C` (handles `beta == 0` without reading C).
fn scale(beta: f64, mut c: MatViewMut<'_>) {
    if beta == 1.0 {
        return;
    }
    for j in 0..c.ncols() {
        let col = c.col_mut(j);
        if beta == 0.0 {
            col.fill(0.0);
        } else {
            for x in col {
                *x *= beta;
            }
        }
    }
}

/// Blocked `NoTrans × NoTrans` path. The `A` block is packed into a
/// contiguous scratch (`ld == mb`) before the inner kernel runs: with tall
/// operands (`ld` in the 10⁵ range) the packed copy turns strided column
/// hops into sequential streams, which is worth far more than the copy.
fn gemm_nn(alpha: f64, a: MatView<'_>, b: MatView<'_>, beta: f64, mut c: MatViewMut<'_>) {
    let (m, k) = (a.nrows(), a.ncols());
    let n = b.ncols();
    scale(beta, c.rb());

    let mut pack = vec![0.0f64; MC.min(m) * KC.min(k)];
    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = KC.min(k - pc);
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                // Pack A[ic..ic+mb, pc..pc+kb] column-major with ld = mb.
                for (p, dst) in pack.chunks_mut(mb).enumerate().take(kb) {
                    dst.copy_from_slice(&a.col(pc + p)[ic..ic + mb]);
                }
                let a_blk = MatView::from_slice(&pack[..mb * kb], mb, kb);
                let b_blk = b.sub(pc, jc, kb, nb);
                let c_blk = c.sub(ic, jc, mb, nb);
                gemm_nn_block(alpha, a_blk, b_blk, c_blk);
                ic += mb;
            }
            pc += kb;
        }
        jc += nb;
    }
}

/// Inner block: `C += alpha * A * B` with A `mb × kb`, all fitting cache.
/// Loop order j-k-i with the k loop unrolled by 4 so each C column is loaded
/// and stored once per 4 rank-1 contributions.
fn gemm_nn_block(alpha: f64, a: MatView<'_>, b: MatView<'_>, mut c: MatViewMut<'_>) {
    let (mb, kb) = (a.nrows(), a.ncols());
    let nb = b.ncols();
    for j in 0..nb {
        let b_col = b.col(j);
        let c_col = c.col_mut(j);
        let mut p = 0;
        while p + 4 <= kb {
            let (x0, x1, x2, x3) = (
                alpha * b_col[p],
                alpha * b_col[p + 1],
                alpha * b_col[p + 2],
                alpha * b_col[p + 3],
            );
            let a0 = a.col(p);
            let a1 = a.col(p + 1);
            let a2 = a.col(p + 2);
            let a3 = a.col(p + 3);
            for i in 0..mb {
                // Safe indexing: all five slices have length mb.
                c_col[i] += x0 * a0[i] + x1 * a1[i] + x2 * a2[i] + x3 * a3[i];
            }
            p += 4;
        }
        while p < kb {
            let x = alpha * b_col[p];
            if x != 0.0 {
                let a_col = a.col(p);
                for i in 0..mb {
                    c_col[i] += x * a_col[i];
                }
            }
            p += 1;
        }
    }
}

/// `C := alpha * Aᵀ * B + beta*C` — dot-product order; A is `k × m` stored.
fn gemm_tn(alpha: f64, a: MatView<'_>, b: MatView<'_>, beta: f64, mut c: MatViewMut<'_>) {
    let m = a.ncols();
    let k = a.nrows();
    let n = b.ncols();
    for j in 0..n {
        let b_col = b.col(j);
        for i in 0..m {
            let a_col = a.col(i);
            let mut dot = 0.0;
            for p in 0..k {
                dot += a_col[p] * b_col[p];
            }
            let cij = c.at(i, j);
            c.set(i, j, if beta == 0.0 { alpha * dot } else { beta * cij + alpha * dot });
        }
    }
}

/// `C := alpha * A * Bᵀ + beta*C` — B is `n × k` stored; axpy order over Bᵀ.
fn gemm_nt(alpha: f64, a: MatView<'_>, b: MatView<'_>, beta: f64, mut c: MatViewMut<'_>) {
    let m = a.nrows();
    let k = a.ncols();
    let n = b.nrows();
    scale(beta, c.rb());
    for p in 0..k {
        let a_col = a.col(p);
        let b_col = b.col(p); // column p of B = row elements B[j, p]
        for (j, &bjp) in b_col.iter().enumerate().take(n) {
            let x = alpha * bjp;
            if x != 0.0 {
                let c_col = c.col_mut(j);
                for i in 0..m {
                    c_col[i] += x * a_col[i];
                }
            }
        }
    }
}

/// `C := alpha * Aᵀ * Bᵀ + beta*C` — rarely used; simple triple loop.
fn gemm_tt(alpha: f64, a: MatView<'_>, b: MatView<'_>, beta: f64, mut c: MatViewMut<'_>) {
    let m = a.ncols();
    let k = a.nrows();
    let n = b.nrows();
    for j in 0..n {
        for i in 0..m {
            let a_col = a.col(i);
            let mut dot = 0.0;
            for (p, &ap) in a_col.iter().enumerate().take(k) {
                dot += ap * b.at(j, p);
            }
            let cij = c.at(i, j);
            c.set(i, j, if beta == 0.0 { alpha * dot } else { beta * cij + alpha * dot });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::Matrix;

    fn reference(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &Matrix) -> Matrix {
        let oa = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let ob = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let ab = oa.matmul(&ob);
        Matrix::from_fn(c.nrows(), c.ncols(), |i, j| beta * c[(i, j)] + alpha * ab[(i, j)])
    }

    fn check(ta: Trans, tb: Trans, m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let mut rng = ca_matrix::seeded_rng(m as u64 * 31 + n as u64 * 7 + k as u64);
        let (ar, ac) = match ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = ca_matrix::random_uniform(ar, ac, &mut rng);
        let b = ca_matrix::random_uniform(br, bc, &mut rng);
        let c0 = ca_matrix::random_uniform(m, n, &mut rng);
        let expect = reference(ta, tb, alpha, &a, &b, beta, &c0);
        let mut c = c0.clone();
        gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view_mut());
        let diff = c.sub_matrix(&expect);
        let err = ca_matrix::norm_max(diff.view());
        assert!(err < 1e-12 * (k.max(1) as f64), "error {err} for {ta:?}{tb:?} {m}x{n}x{k}");
    }

    #[test]
    fn nn_small_and_odd_sizes() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (4, 4, 4), (5, 3, 9), (17, 13, 11)] {
            check(Trans::No, Trans::No, m, n, k, 1.0, 1.0);
        }
    }

    #[test]
    fn nn_crosses_block_boundaries() {
        check(Trans::No, Trans::No, MC + 7, 19, KC + 5, 1.0, 0.0);
        check(Trans::No, Trans::No, 33, NC + 3, 9, -0.5, 2.0);
    }

    #[test]
    fn transposed_variants() {
        check(Trans::Yes, Trans::No, 6, 8, 10, 1.0, 1.0);
        check(Trans::No, Trans::Yes, 6, 8, 10, 2.0, -1.0);
        check(Trans::Yes, Trans::Yes, 7, 5, 9, -1.0, 0.5);
    }

    #[test]
    fn alpha_zero_only_scales_c() {
        let mut rng = ca_matrix::seeded_rng(9);
        let a = ca_matrix::random_uniform(4, 4, &mut rng);
        let b = ca_matrix::random_uniform(4, 4, &mut rng);
        let c0 = ca_matrix::random_uniform(4, 4, &mut rng);
        let mut c = c0.clone();
        gemm(Trans::No, Trans::No, 0.0, a.view(), b.view(), 2.0, c.view_mut());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c[(i, j)], 2.0 * c0[(i, j)]);
            }
        }
    }

    #[test]
    fn beta_zero_ignores_nan_in_c() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        let mut c = Matrix::from_rows(2, 2, &[f64::NAN, f64::NAN, f64::NAN, f64::NAN]);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view_mut());
        assert_eq!(c, Matrix::identity(2));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let mut c = Matrix::zeros(0, 4);
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        let mut c = ca_matrix::random_uniform(2, 4, &mut ca_matrix::seeded_rng(1));
        let c0 = c.clone();
        // k == 0: C := beta * C
        gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());
        assert_eq!(c, c0);
    }

    #[test]
    fn strided_views_multiply_correctly() {
        // Operate on interior blocks of larger matrices so ld != rows.
        let mut rng = ca_matrix::seeded_rng(77);
        let big_a = ca_matrix::random_uniform(10, 10, &mut rng);
        let big_b = ca_matrix::random_uniform(10, 10, &mut rng);
        let mut big_c = Matrix::zeros(10, 10);
        let a = big_a.block(2, 3, 4, 5);
        let b = big_b.block(1, 2, 5, 3);
        gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, big_c.block_mut(5, 6, 4, 3));

        let a_own = Matrix::from_fn(4, 5, |i, j| big_a[(2 + i, 3 + j)]);
        let b_own = Matrix::from_fn(5, 3, |i, j| big_b[(1 + i, 2 + j)]);
        let expect = a_own.matmul(&b_own);
        for i in 0..4 {
            for j in 0..3 {
                assert!((big_c[(5 + i, 6 + j)] - expect[(i, j)]).abs() < 1e-13);
            }
        }
        // Untouched area stays zero.
        assert_eq!(big_c[(0, 0)], 0.0);
        assert_eq!(big_c[(4, 6)], 0.0);
    }
}
