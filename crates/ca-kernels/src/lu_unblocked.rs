//! Unblocked LU factorizations: `getf2` (BLAS2 Gaussian elimination with
//! partial pivoting — the paper's `MKL_dgetf2` stand-in) and `lu_nopiv`
//! (no-pivoting LU used to factor a panel after tournament pivoting has
//! already moved the chosen pivot rows to the top).

use crate::ger::iamax;
use ca_matrix::{MatViewMut, PivotSeq, Scalar};

/// Outcome of an LU panel factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LuInfo {
    /// Row interchanges, view-local (offset 0).
    pub pivots: PivotSeq,
    /// Column index of the first exactly-zero pivot encountered, if any
    /// (LAPACK `info`). Factorization continues past it, leaving zeros.
    pub first_zero_pivot: Option<usize>,
}

/// Gaussian elimination with partial pivoting of an `m × n` view, in place —
/// `dgetf2`. On return the strictly-lower part holds `L` (unit diagonal
/// implicit) and the upper part holds `U`, with `ΠA = LU` for the recorded
/// interchanges.
///
/// One column is eliminated per step: pivot search (`idamax`), row swap,
/// column scale, rank-1 trailing update. This is the BLAS2 routine whose
/// poor multicore performance motivates TSLU in the paper.
pub fn getf2<T: Scalar>(mut a: MatViewMut<'_, T>) -> LuInfo {
    let m = a.nrows();
    let n = a.ncols();
    let kmax = m.min(n);
    let mut pivots = PivotSeq::new(0);
    let mut first_zero_pivot = None;

    for k in 0..kmax {
        // Pivot search over column k, rows k..m.
        let col = &a.col(k)[k..];
        let p = k + iamax(col).expect("non-empty pivot column");
        pivots.push(p);
        if p != k {
            a.swap_rows(k, p);
        }
        let piv = a.at(k, k);
        if piv == T::ZERO {
            if first_zero_pivot.is_none() {
                first_zero_pivot = Some(k);
            }
            continue; // nothing to eliminate; U gets the zero
        }
        // Scale multipliers.
        let inv = T::ONE / piv;
        {
            let col_k = a.col_mut(k);
            for x in &mut col_k[k + 1..] {
                *x *= inv;
            }
        }
        // Rank-1 update of the trailing (m-k-1) × (n-k-1) block:
        // A[k+1.., k+1..] -= L[k+1.., k] * U[k, k+1..].
        for j in k + 1..n {
            let ukj = a.at(k, j);
            if ukj != T::ZERO {
                // Column k multipliers are read-only during the update of
                // column j (j > k) — copy via raw parts to satisfy borrows.
                let lk_ptr = a.col(k)[k + 1..].as_ptr();
                let lk = unsafe { core::slice::from_raw_parts(lk_ptr, m - k - 1) };
                let cj = &mut a.col_mut(j)[k + 1..];
                for (c, &l) in cj.iter_mut().zip(lk) {
                    *c -= l * ukj;
                }
            }
        }
    }
    LuInfo { pivots, first_zero_pivot }
}

/// LU factorization **without pivoting** of an `m × n` view (`m ≥ n`
/// expected), in place. Used on a tournament-pivoted panel whose top `n × n`
/// block is already guaranteed a good pivot order.
///
/// Returns the column index of the first zero diagonal if the factorization
/// broke down (`None` on success).
pub fn lu_nopiv<T: Scalar>(mut a: MatViewMut<'_, T>) -> Option<usize> {
    let m = a.nrows();
    let n = a.ncols();
    let kmax = m.min(n);
    let mut breakdown = None;
    for k in 0..kmax {
        let piv = a.at(k, k);
        if piv == T::ZERO {
            if breakdown.is_none() {
                breakdown = Some(k);
            }
            continue;
        }
        let inv = T::ONE / piv;
        {
            let col_k = a.col_mut(k);
            for x in &mut col_k[k + 1..] {
                *x *= inv;
            }
        }
        for j in k + 1..n {
            let ukj = a.at(k, j);
            if ukj != T::ZERO {
                let lk_ptr = a.col(k)[k + 1..].as_ptr();
                let lk = unsafe { core::slice::from_raw_parts(lk_ptr, m - k - 1) };
                let cj = &mut a.col_mut(j)[k + 1..];
                for (c, &l) in cj.iter_mut().zip(lk) {
                    *c -= l * ukj;
                }
            }
        }
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{lu_residual, Matrix};

    fn check_gepp(m: usize, n: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut ca_matrix::seeded_rng(seed));
        let mut a = a0.clone();
        let info = getf2(a.view_mut());
        assert!(info.first_zero_pivot.is_none());
        let perm = info.pivots.to_permutation(m);
        let res = lu_residual(&a0, &perm, &a.unit_lower(), &a.upper());
        assert!(res < 1e-13, "residual {res} for {m}x{n}");
        // Partial pivoting bounds multipliers by 1.
        let l = a.unit_lower();
        for j in 0..l.ncols() {
            for i in j + 1..m {
                assert!(l[(i, j)].abs() <= 1.0 + 1e-15, "multiplier > 1 at ({i},{j})");
            }
        }
    }

    #[test]
    fn gepp_square_and_rectangular() {
        check_gepp(1, 1, 1);
        check_gepp(5, 5, 2);
        check_gepp(16, 16, 3);
        check_gepp(20, 7, 4); // tall
        check_gepp(7, 20, 5); // wide
        check_gepp(64, 32, 6);
    }

    #[test]
    fn gepp_picks_largest_pivot_first() {
        let a0 = Matrix::from_rows(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0]);
        let mut a = a0.clone();
        let info = getf2(a.view_mut());
        assert_eq!(info.pivots.ipiv[0], 2); // row 2 has the 7
    }

    #[test]
    fn gepp_survives_zero_column() {
        let mut a = Matrix::from_rows(3, 3, &[0.0, 1.0, 2.0, 0.0, 3.0, 4.0, 0.0, 5.0, 7.0]);
        let info = getf2(a.view_mut());
        assert_eq!(info.first_zero_pivot, Some(0));
        // Remaining columns still eliminated.
        assert!(a[(2, 2)].is_finite());
    }

    #[test]
    fn gepp_on_singular_matrix_reports_info() {
        // rank-1 matrix
        let a0 = Matrix::from_fn(4, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let mut a = a0.clone();
        let info = getf2(a.view_mut());
        assert!(info.first_zero_pivot.is_some());
    }

    #[test]
    fn nopiv_matches_gepp_on_diag_dominant() {
        let a0 = ca_matrix::random_diag_dominant(10, &mut ca_matrix::seeded_rng(9));
        let mut a = a0.clone();
        let bd = lu_nopiv(a.view_mut());
        assert!(bd.is_none());
        let res = lu_residual(&a0, &(0..10).collect::<Vec<_>>(), &a.unit_lower(), &a.upper());
        assert!(res < 1e-13, "residual {res}");
    }

    #[test]
    fn nopiv_reports_breakdown() {
        let mut a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert_eq!(lu_nopiv(a.view_mut()), Some(0));
    }

    #[test]
    fn nopiv_tall_panel() {
        // Tall panel with dominant top block: the TSLU post-tournament shape.
        let mut rng = ca_matrix::seeded_rng(11);
        let mut a0 = ca_matrix::random_uniform(12, 3, &mut rng);
        for i in 0..3 {
            a0[(i, i)] = 10.0;
        }
        let mut a = a0.clone();
        assert!(lu_nopiv(a.view_mut()).is_none());
        let res = lu_residual(&a0, &(0..12).collect::<Vec<_>>(), &a.unit_lower(), &a.upper());
        assert!(res < 1e-13, "residual {res}");
    }

    #[test]
    fn gepp_equals_manual_two_by_two() {
        let a0 = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let mut a = a0.clone();
        let info = getf2(a.view_mut());
        // pivot row 1: U = [3 4; 0 2/3], L21 = 1/3
        assert_eq!(info.pivots.ipiv, vec![1, 1]);
        assert!((a[(0, 0)] - 3.0).abs() < 1e-15);
        assert!((a[(0, 1)] - 4.0).abs() < 1e-15);
        assert!((a[(1, 0)] - 1.0 / 3.0).abs() < 1e-15);
        assert!((a[(1, 1)] - 2.0 / 3.0).abs() < 1e-15);
    }
}
