//! The pre-BLIS GEMM implementation, retained verbatim as a baseline.
//!
//! This is the kernel the packed path replaced: a cache-blocked loop nest
//! whose inner kernel is a 4-way unrolled sequence of column AXPYs (packing
//! only A), with dot-product loop orders for the transposed cases. It
//! exists so `ca-bench`'s `gemm_sweep` binary can report the packed
//! kernel's speedup against it (`BENCH_gemm.json`), and as an independent
//! second oracle in the conformance suite.

use crate::gemm::{op_shape, scale, Trans};
use ca_matrix::{MatView, MatViewMut, Scalar};

/// Cache-block sizes of the AXPY path (the original tuning).
const MC: usize = 256;
const KC: usize = 128;
const NC: usize = 512;

/// `C := alpha * op(A) * op(B) + beta * C` via the pre-BLIS AXPY kernel.
///
/// Same contract as [`crate::gemm`]; kept only for benchmarking and as a
/// conformance oracle — factorizations always use the packed path.
///
/// # Panics
/// If the shapes of `op(A)`, `op(B)` and `C` are inconsistent.
pub fn gemm_axpy<T: Scalar>(
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    beta: T,
    mut c: MatViewMut<'_, T>,
) {
    let (m, ka) = op_shape(ta, a);
    let (kb, n) = op_shape(tb, b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch: op(A) is {m}x{ka}, op(B) is {kb}x{n}");
    assert_eq!(c.nrows(), m, "gemm C row mismatch");
    assert_eq!(c.ncols(), n, "gemm C column mismatch");
    let k = ka;

    if m == 0 || n == 0 {
        return;
    }
    if alpha == T::ZERO || k == 0 {
        scale(beta, c.rb());
        return;
    }

    match (ta, tb) {
        (Trans::No, Trans::No) => gemm_nn(alpha, a, b, beta, c),
        (Trans::Yes, Trans::No) => gemm_tn(alpha, a, b, beta, c),
        (Trans::No, Trans::Yes) => gemm_nt(alpha, a, b, beta, c),
        (Trans::Yes, Trans::Yes) => gemm_tt(alpha, a, b, beta, c),
    }
}

/// Blocked `NoTrans × NoTrans` path. The `A` block is packed into a
/// contiguous scratch (`ld == mb`) before the inner kernel runs.
fn gemm_nn<T: Scalar>(alpha: T, a: MatView<'_, T>, b: MatView<'_, T>, beta: T, mut c: MatViewMut<'_, T>) {
    let (m, k) = (a.nrows(), a.ncols());
    let n = b.ncols();
    scale(beta, c.rb());

    let mut pack = vec![T::ZERO; MC.min(m) * KC.min(k)];
    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = KC.min(k - pc);
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                // Pack A[ic..ic+mb, pc..pc+kb] column-major with ld = mb.
                for (p, dst) in pack.chunks_mut(mb).enumerate().take(kb) {
                    dst.copy_from_slice(&a.col(pc + p)[ic..ic + mb]);
                }
                let a_blk = MatView::from_slice(&pack[..mb * kb], mb, kb);
                let b_blk = b.sub(pc, jc, kb, nb);
                let c_blk = c.sub(ic, jc, mb, nb);
                gemm_nn_block(alpha, a_blk, b_blk, c_blk);
                ic += mb;
            }
            pc += kb;
        }
        jc += nb;
    }
}

/// Inner block: `C += alpha * A * B` with A `mb × kb`, all fitting cache.
/// Loop order j-k-i with the k loop unrolled by 4 so each C column is loaded
/// and stored once per 4 rank-1 contributions.
fn gemm_nn_block<T: Scalar>(alpha: T, a: MatView<'_, T>, b: MatView<'_, T>, mut c: MatViewMut<'_, T>) {
    let (mb, kb) = (a.nrows(), a.ncols());
    let nb = b.ncols();
    for j in 0..nb {
        let b_col = b.col(j);
        let c_col = c.col_mut(j);
        let mut p = 0;
        while p + 4 <= kb {
            let (x0, x1, x2, x3) = (
                alpha * b_col[p],
                alpha * b_col[p + 1],
                alpha * b_col[p + 2],
                alpha * b_col[p + 3],
            );
            let a0 = a.col(p);
            let a1 = a.col(p + 1);
            let a2 = a.col(p + 2);
            let a3 = a.col(p + 3);
            for i in 0..mb {
                // Safe indexing: all five slices have length mb.
                c_col[i] += x0 * a0[i] + x1 * a1[i] + x2 * a2[i] + x3 * a3[i];
            }
            p += 4;
        }
        while p < kb {
            let x = alpha * b_col[p];
            if x != T::ZERO {
                let a_col = a.col(p);
                for i in 0..mb {
                    c_col[i] += x * a_col[i];
                }
            }
            p += 1;
        }
    }
}

/// `C := alpha * Aᵀ * B + beta*C` — dot-product order; A is `k × m` stored.
fn gemm_tn<T: Scalar>(alpha: T, a: MatView<'_, T>, b: MatView<'_, T>, beta: T, mut c: MatViewMut<'_, T>) {
    let m = a.ncols();
    let k = a.nrows();
    let n = b.ncols();
    for j in 0..n {
        let b_col = b.col(j);
        for i in 0..m {
            let a_col = a.col(i);
            let mut dot = T::ZERO;
            for p in 0..k {
                dot += a_col[p] * b_col[p];
            }
            let cij = c.at(i, j);
            c.set(i, j, if beta == T::ZERO { alpha * dot } else { beta * cij + alpha * dot });
        }
    }
}

/// `C := alpha * A * Bᵀ + beta*C` — B is `n × k` stored; axpy order over Bᵀ.
fn gemm_nt<T: Scalar>(alpha: T, a: MatView<'_, T>, b: MatView<'_, T>, beta: T, mut c: MatViewMut<'_, T>) {
    let m = a.nrows();
    let k = a.ncols();
    let n = b.nrows();
    scale(beta, c.rb());
    for p in 0..k {
        let a_col = a.col(p);
        let b_col = b.col(p); // column p of B = row elements B[j, p]
        for (j, &bjp) in b_col.iter().enumerate().take(n) {
            let x = alpha * bjp;
            if x != T::ZERO {
                let c_col = c.col_mut(j);
                for i in 0..m {
                    c_col[i] += x * a_col[i];
                }
            }
        }
    }
}

/// `C := alpha * Aᵀ * Bᵀ + beta*C` — rarely used; simple triple loop.
fn gemm_tt<T: Scalar>(alpha: T, a: MatView<'_, T>, b: MatView<'_, T>, beta: T, mut c: MatViewMut<'_, T>) {
    let m = a.ncols();
    let k = a.nrows();
    let n = b.nrows();
    for j in 0..n {
        for i in 0..m {
            let a_col = a.col(i);
            let mut dot = T::ZERO;
            for (p, &ap) in a_col.iter().enumerate().take(k) {
                dot += ap * b.at(j, p);
            }
            let cij = c.at(i, j);
            c.set(i, j, if beta == T::ZERO { alpha * dot } else { beta * cij + alpha * dot });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::norm_max;

    #[test]
    fn axpy_baseline_agrees_with_packed_path() {
        for &(ta, tb) in &[
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let (m, n, k) = (23, 17, 31);
            let mut rng = ca_matrix::seeded_rng(5);
            let (ar, ac) = if ta == Trans::No { (m, k) } else { (k, m) };
            let (br, bc) = if tb == Trans::No { (k, n) } else { (n, k) };
            let a = ca_matrix::random_uniform(ar, ac, &mut rng);
            let b = ca_matrix::random_uniform(br, bc, &mut rng);
            let c0 = ca_matrix::random_uniform(m, n, &mut rng);
            let mut c_axpy = c0.clone();
            let mut c_packed = c0.clone();
            gemm_axpy(ta, tb, 1.0, a.view(), b.view(), -0.5, c_axpy.view_mut());
            crate::gemm::gemm(ta, tb, 1.0, a.view(), b.view(), -0.5, c_packed.view_mut());
            let err = norm_max(c_axpy.sub_matrix(&c_packed).view());
            assert!(err < 1e-12 * k as f64, "{ta:?}{tb:?} differ by {err}");
        }
    }
}
