//! Floating-point operation counts for each kernel class.
//!
//! Used twice: by the benchmark harness to convert measured times into
//! GFlop/s using the *useful* flop count (the LAPACK convention — both MKL
//! and the paper report `GFlops = flops_LAPACK / time`), and by the
//! multicore simulator to assign costs to tasks (there the *actual* flops
//! performed matter, including CA redundancy).

/// Flops of `C += A·B` with `C` being `m × n` and inner dimension `k`.
///
/// Packing on the BLIS-style path moves data but performs no arithmetic:
/// the copies are charged in [`crate::traffic::gemm`], never here, so
/// GFlop/s stays the LAPACK useful-flops convention.
pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

/// Flops of a triangular solve with an `n × n` triangle and `m` RHS rows
/// (side = right: `B(m×n) := B·T⁻¹`).
pub fn trsm_right(m: usize, n: usize) -> f64 {
    m as f64 * (n as f64) * (n as f64)
}

/// Flops of a triangular solve with an `m × m` triangle applied from the
/// left to an `m × n` block.
pub fn trsm_left(m: usize, n: usize) -> f64 {
    n as f64 * (m as f64) * (m as f64)
}

/// Flops of LU with partial pivoting of an `m × n` matrix (`m ≥ n`):
/// `n²(m − n/3)` — the LAPACK `dgetrf` operation count
/// (`(2/3)n³` when square).
pub fn getrf(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    n * n * (m - n / 3.0)
}

/// Flops of Householder QR of an `m × n` matrix (`m ≥ n`):
/// `2n²(m − n/3)` — the LAPACK `dgeqrf` count (`(4/3)n³` when square).
pub fn geqrf(m: usize, n: usize) -> f64 {
    2.0 * getrf(m, n)
}

/// Flops of one tournament-pivoting reduction node: GEPP of the `2b × b`
/// stacked candidate block.
pub fn tslu_node(b: usize) -> f64 {
    getrf(2 * b, b)
}

/// Flops of one TSQR reduction node: QR of the `2b × b` stacked R pair
/// (computed densely; a structured triangle-triangle kernel would need
/// `~(2/3)b³·2`, the dense count is `(10/3)b³`).
pub fn tsqr_node_dense(b: usize) -> f64 {
    geqrf(2 * b, b)
}

/// Flops of applying a `k`-reflector compact-WY block to an `m × n` block
/// (`dlarfb`): `4mnk` to leading order (two gemm-like sweeps), plus the
/// small `k²n` triangular multiply.
pub fn larfb(m: usize, n: usize, k: usize) -> f64 {
    4.0 * m as f64 * n as f64 * k as f64 + (k * k) as f64 * n as f64
}

/// Flops of a structured triangle-on-square tile QR (`dtsqrt`): `r × b`
/// dense tile annihilated against a `b × b` triangle, plus the `T` build.
pub fn tsqrt(r: usize, b: usize) -> f64 {
    2.0 * r as f64 * (b * b) as f64 + r as f64 * (b * b) as f64
}

/// Flops of applying `dtsqrt` reflectors to a stacked tile pair of width `w`
/// (`dtsmqr`): two rank-`b` sweeps over the `r`-row tile plus the `T`
/// triangle multiply.
pub fn tsmqr(r: usize, b: usize, w: usize) -> f64 {
    4.0 * r as f64 * b as f64 * w as f64 + (b * b) as f64 * w as f64
}

/// Flops of `dtstrf` as implemented here (dense GEPP of the stacked
/// `(b + r) × b` pair).
pub fn tstrf(r: usize, b: usize) -> f64 {
    getrf(b + r, b)
}

/// Flops of `dssssm`: pair interchange (free), `b × w` triangular solve and
/// an `r × w × b` gemm.
pub fn ssssm(r: usize, b: usize, w: usize) -> f64 {
    trsm_left(b, w) + gemm(r, w, b)
}

/// Extra flops CALU performs over classic GEPP for an `m × n` factorization
/// with panel width `b` and `tr` leaf blocks per panel (tournament GEPP
/// redundancy: each inner node refactors a `2b × b` block; the panel is then
/// refactored once more). Lower-order compared to `getrf(m, n)`.
pub fn calu_overhead(m: usize, n: usize, b: usize, tr: usize) -> f64 {
    let panels = n.div_ceil(b);
    let nodes_per_panel = tr.saturating_sub(1);
    let refactor = getrf(2 * b, b) * nodes_per_panel as f64;
    // Second factorization of the b×b top block per panel.
    let second = getrf(b, b);
    let _ = m;
    panels as f64 * (refactor + second)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_counts_match_classics() {
        let n = 1000usize;
        assert!((getrf(n, n) - 2.0 / 3.0 * 1e9).abs() < 1e6);
        assert!((geqrf(n, n) - 4.0 / 3.0 * 1e9).abs() < 1e6);
    }

    #[test]
    fn gemm_count() {
        assert_eq!(gemm(2, 3, 4), 48.0);
    }

    #[test]
    fn overhead_is_lower_order() {
        // For a tall-skinny 1e5 x 100 with b=100, Tr=8: overhead « total.
        let total = getrf(100_000, 100);
        let extra = calu_overhead(100_000, 100, 100, 8);
        assert!(extra < 0.05 * total, "extra {extra} vs total {total}");
    }

    #[test]
    fn tournament_node_cost_is_cubic_in_b() {
        let c1 = tslu_node(50);
        let c2 = tslu_node(100);
        let ratio = c2 / c1;
        assert!(ratio > 7.5 && ratio < 8.5, "expected ~8x, got {ratio}");
    }
}
