//! Operand packing for the BLIS-style blocked GEMM.
//!
//! Packing rearranges a cache block of `op(A)` / `op(B)` into the exact
//! streaming order the microkernel consumes, and is where the `Trans` flags
//! are folded away: the packed image is always the *operated* matrix, so the
//! driver and microkernel only ever see the `NoTrans × NoTrans` case.
//!
//! Layouts, for a microkernel geometry `(mr, nr)` (a runtime parameter now
//! that geometries differ per element type and SIMD backend — see
//! [`crate::gemm::KernelSpec`]):
//!
//! * **A block** (`mb × kb` of `op(A)`): row micro-panels of `mr` rows, each
//!   panel stored column-by-column — element `(i, p)` of panel `q` lives at
//!   `q·mr·kb + p·mr + i`. Rows past `mb` in the last panel are zero-filled.
//! * **B block** (`kb × nb` of `op(B)`): column micro-panels of `nr`
//!   columns, each stored row-by-row — element `(p, j)` of panel `q` lives
//!   at `q·nr·kb + p·nr + j`. Columns past `nb` are zero-filled.
//!
//! Zero-padding lets the microkernel always run a full `mr × nr` tile; the
//! driver discards the padded lanes when storing edge tiles.

use ca_matrix::{MatView, Scalar};

/// Whether the source operand is read as stored or transposed, resolved at
/// pack time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackTrans {
    /// Pack the operand as stored.
    No,
    /// Pack the transpose of the operand.
    Yes,
}

/// Packs the `mb × kb` block of `op(A)` starting at (`ic`, `pc`) (indices in
/// the *operated* matrix) into `buf` in row-micro-panel order for tile
/// height `mr`.
///
/// `buf` must hold at least `mb.next_multiple_of(mr) * kb` elements.
#[allow(clippy::too_many_arguments)] // BLAS-style call convention
pub fn pack_a<T: Scalar>(
    trans: PackTrans,
    a: MatView<'_, T>,
    ic: usize,
    mb: usize,
    pc: usize,
    kb: usize,
    buf: &mut [T],
    mr: usize,
) {
    let panels = mb.div_ceil(mr);
    debug_assert!(buf.len() >= panels * mr * kb);
    for q in 0..panels {
        let i0 = q * mr;
        let rows = mr.min(mb - i0);
        let panel = &mut buf[q * mr * kb..(q + 1) * mr * kb];
        match trans {
            PackTrans::No => {
                // op(A)[ic+i, pc+p] = A[ic+i, pc+p]: source columns are
                // contiguous, copy `rows` at a time.
                for p in 0..kb {
                    let src = &a.col(pc + p)[ic + i0..ic + i0 + rows];
                    let dst = &mut panel[p * mr..p * mr + rows];
                    dst.copy_from_slice(src);
                    panel[p * mr + rows..(p + 1) * mr].fill(T::ZERO);
                }
            }
            PackTrans::Yes => {
                // op(A)[ic+i, pc+p] = A[pc+p, ic+i]: each packed row i walks
                // a source column (ic+i0+i), contiguous over p.
                for i in 0..rows {
                    let src = &a.col(ic + i0 + i)[pc..pc + kb];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * mr + i] = v;
                    }
                }
                if rows < mr {
                    for p in 0..kb {
                        panel[p * mr + rows..(p + 1) * mr].fill(T::ZERO);
                    }
                }
            }
        }
    }
}

/// Packs the `kb × nb` block of `op(B)` starting at (`pc`, `jc`) (indices in
/// the *operated* matrix) into `buf` in column-micro-panel order for tile
/// width `nr`.
///
/// `buf` must hold at least `kb * nb.next_multiple_of(nr)` elements.
#[allow(clippy::too_many_arguments)] // BLAS-style call convention
pub fn pack_b<T: Scalar>(
    trans: PackTrans,
    b: MatView<'_, T>,
    pc: usize,
    kb: usize,
    jc: usize,
    nb: usize,
    buf: &mut [T],
    nr: usize,
) {
    let panels = nb.div_ceil(nr);
    debug_assert!(buf.len() >= panels * nr * kb);
    for q in 0..panels {
        let j0 = q * nr;
        let cols = nr.min(nb - j0);
        let panel = &mut buf[q * nr * kb..(q + 1) * nr * kb];
        match trans {
            PackTrans::No => {
                // op(B)[pc+p, jc+j] = B[pc+p, jc+j]: walk the nr source
                // columns, scattering each into stride-nr slots.
                for j in 0..cols {
                    let src = &b.col(jc + j0 + j)[pc..pc + kb];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * nr + j] = v;
                    }
                }
            }
            PackTrans::Yes => {
                // op(B)[pc+p, jc+j] = B[jc+j, pc+p]: each packed row p is a
                // stretch of a source column (pc+p), strided over j.
                for p in 0..kb {
                    let src = b.col(pc + p);
                    for j in 0..cols {
                        panel[p * nr + j] = src[jc + j0 + j];
                    }
                }
            }
        }
        if cols < nr {
            for p in 0..kb {
                panel[p * nr + cols..(p + 1) * nr].fill(T::ZERO);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MR, NR};
    use ca_matrix::Matrix;

    fn numbered(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * 100 + j) as f64)
    }

    #[test]
    fn pack_a_notrans_layout_and_padding() {
        let a = numbered(MR + 3, 5);
        let mb = MR + 3;
        let kb = 5;
        let mut buf = vec![f64::NAN; mb.div_ceil(MR) * MR * kb];
        pack_a(PackTrans::No, a.view(), 0, mb, 0, kb, &mut buf, MR);
        // Panel 0, column p, row i.
        for p in 0..kb {
            for i in 0..MR {
                assert_eq!(buf[p * MR + i], a[(i, p)]);
            }
        }
        // Panel 1 holds rows MR..MR+3 then zero padding.
        let panel1 = &buf[MR * kb..];
        for p in 0..kb {
            for i in 0..3 {
                assert_eq!(panel1[p * MR + i], a[(MR + i, p)]);
            }
            for i in 3..MR {
                assert_eq!(panel1[p * MR + i], 0.0);
            }
        }
    }

    #[test]
    fn pack_a_trans_matches_notrans_of_transpose() {
        let a = numbered(6, MR + 2);
        let at = a.transpose(); // (MR+2) x 6
        let (mb, kb) = (MR + 2, 6);
        let mut packed_t = vec![f64::NAN; mb.div_ceil(MR) * MR * kb];
        let mut packed_n = vec![f64::NAN; mb.div_ceil(MR) * MR * kb];
        pack_a(PackTrans::Yes, a.view(), 0, mb, 0, kb, &mut packed_t, MR);
        pack_a(PackTrans::No, at.view(), 0, mb, 0, kb, &mut packed_n, MR);
        assert_eq!(packed_t, packed_n);
    }

    #[test]
    fn pack_b_notrans_layout_and_padding() {
        let b = numbered(4, NR + 1);
        let (kb, nb) = (4, NR + 1);
        let mut buf = vec![f64::NAN; nb.div_ceil(NR) * NR * kb];
        pack_b(PackTrans::No, b.view(), 0, kb, 0, nb, &mut buf, NR);
        for p in 0..kb {
            for j in 0..NR {
                assert_eq!(buf[p * NR + j], b[(p, j)]);
            }
        }
        let panel1 = &buf[NR * kb..];
        for p in 0..kb {
            assert_eq!(panel1[p * NR], b[(p, NR)]);
            for j in 1..NR {
                assert_eq!(panel1[p * NR + j], 0.0);
            }
        }
    }

    #[test]
    fn pack_b_trans_matches_notrans_of_transpose() {
        let b = numbered(NR + 3, 7);
        let bt = b.transpose(); // 7 x (NR+3)
        let (kb, nb) = (7, NR + 3);
        let mut packed_t = vec![f64::NAN; nb.div_ceil(NR) * NR * kb];
        let mut packed_n = vec![f64::NAN; nb.div_ceil(NR) * NR * kb];
        pack_b(PackTrans::Yes, b.view(), 0, kb, 0, nb, &mut packed_t, NR);
        pack_b(PackTrans::No, bt.view(), 0, kb, 0, nb, &mut packed_n, NR);
        assert_eq!(packed_t, packed_n);
    }

    #[test]
    fn packing_interior_blocks_respects_offsets() {
        let a = numbered(20, 20);
        let (ic, pc, mb, kb) = (3, 5, MR, 4);
        let mut buf = vec![f64::NAN; MR * kb];
        pack_a(PackTrans::No, a.view(), ic, mb, pc, kb, &mut buf, MR);
        for p in 0..kb {
            for i in 0..MR {
                assert_eq!(buf[p * MR + i], a[(ic + i, pc + p)]);
            }
        }
        let mut buf = vec![f64::NAN; 2 * NR * kb];
        pack_b(PackTrans::No, a.view(), pc, kb, ic, 2 * NR, &mut buf, NR);
        for q in 0..2 {
            for p in 0..kb {
                for j in 0..NR {
                    assert_eq!(buf[q * NR * kb + p * NR + j], a[(pc + p, ic + q * NR + j)]);
                }
            }
        }
    }

    #[test]
    fn pack_wide_tile_geometry_f32() {
        // AVX-512-style f32 geometry (mr = 16) on a ragged block.
        let a: Matrix<f32> = Matrix::from_fn(19, 3, |i, j| (i * 10 + j) as f32);
        let (mb, kb, mr) = (19usize, 3, 16);
        let mut buf = vec![f32::NAN; mb.div_ceil(mr) * mr * kb];
        pack_a(PackTrans::No, a.view(), 0, mb, 0, kb, &mut buf, mr);
        for p in 0..kb {
            for i in 0..mb {
                assert_eq!(buf[(i / mr) * mr * kb + p * mr + (i % mr)], a[(i, p)]);
            }
            for i in mb..2 * mr {
                assert_eq!(buf[(i / mr) * mr * kb + p * mr + (i % mr)], 0.0);
            }
        }
    }
}
