//! Register-blocked GEMM microkernels.
//!
//! Both kernels compute the same contraction over zero-padded packed panels:
//!
//! ```text
//! C[0..MR, 0..NR] += alpha * sum_p  a[p*MR + i] * b[p*NR + j]
//! ```
//!
//! where `a` is an `MR × kc` micro-panel of packed A (column `p` stored as
//! `MR` contiguous elements) and `b` is a `kc × NR` micro-panel of packed B
//! (row `p` stored as `NR` contiguous elements). `C` is addressed through
//! `(c, ldc)` in the usual column-major way.
//!
//! The AVX2+FMA kernel keeps the full `MR × NR = 8 × 4` accumulator tile in
//! eight `ymm` registers (two 4-wide vectors per C column) and issues two
//! FMAs per packed B element; the scalar kernel is the exact same algorithm
//! on a stack array, used when AVX2 is unavailable or force-disabled. The
//! two differ bitwise (FMA contracts the multiply-add), but both are within
//! the `O(k·eps)` conformance bound of a naive triple loop.

/// Microkernel tile height (rows of C per call).
pub const MR: usize = 8;
/// Microkernel tile width (columns of C per call).
pub const NR: usize = 4;

/// Scalar reference microkernel.
///
/// # Safety
/// `a` must hold `MR * kc` elements, `b` must hold `NR * kc` elements, and
/// `c` must point to an `MR × NR` column-major tile with leading dimension
/// `ldc >= MR` that is valid for reads and writes.
pub unsafe fn kernel_scalar(kc: usize, alpha: f64, a: *const f64, b: *const f64, c: *mut f64, ldc: usize) {
    let mut acc = [0.0f64; MR * NR];
    // SAFETY: panel bounds per the caller's contract.
    unsafe {
        for p in 0..kc {
            let ap = a.add(p * MR);
            let bp = b.add(p * NR);
            for j in 0..NR {
                let bv = *bp.add(j);
                for i in 0..MR {
                    acc[j * MR + i] += *ap.add(i) * bv;
                }
            }
        }
        for j in 0..NR {
            for i in 0..MR {
                *c.add(i + j * ldc) += alpha * acc[j * MR + i];
            }
        }
    }
}

/// AVX2 + FMA microkernel (8×4 f64 register tile).
///
/// # Safety
/// Same panel/tile requirements as [`kernel_scalar`], plus the CPU must
/// support AVX2 and FMA (guaranteed by the runtime dispatch in `gemm`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn kernel_avx2(kc: usize, alpha: f64, a: *const f64, b: *const f64, c: *mut f64, ldc: usize) {
    use core::arch::x86_64::*;
    // SAFETY: panel bounds per the caller's contract; loads/stores below
    // stay inside the packed panels and the MR×NR C tile.
    unsafe {
        // Accumulators: columns j = 0..4, each split into rows 0..4 / 4..8.
        let mut c0l = _mm256_setzero_pd();
        let mut c0h = _mm256_setzero_pd();
        let mut c1l = _mm256_setzero_pd();
        let mut c1h = _mm256_setzero_pd();
        let mut c2l = _mm256_setzero_pd();
        let mut c2h = _mm256_setzero_pd();
        let mut c3l = _mm256_setzero_pd();
        let mut c3h = _mm256_setzero_pd();

        for p in 0..kc {
            let ap = a.add(p * MR);
            let al = _mm256_load_pd(ap);
            let ah = _mm256_load_pd(ap.add(4));
            let bp = b.add(p * NR);

            let b0 = _mm256_broadcast_sd(&*bp);
            c0l = _mm256_fmadd_pd(al, b0, c0l);
            c0h = _mm256_fmadd_pd(ah, b0, c0h);
            let b1 = _mm256_broadcast_sd(&*bp.add(1));
            c1l = _mm256_fmadd_pd(al, b1, c1l);
            c1h = _mm256_fmadd_pd(ah, b1, c1h);
            let b2 = _mm256_broadcast_sd(&*bp.add(2));
            c2l = _mm256_fmadd_pd(al, b2, c2l);
            c2h = _mm256_fmadd_pd(ah, b2, c2h);
            let b3 = _mm256_broadcast_sd(&*bp.add(3));
            c3l = _mm256_fmadd_pd(al, b3, c3l);
            c3h = _mm256_fmadd_pd(ah, b3, c3h);
        }

        // C tile update: c += alpha * acc (mul then add, matching the scalar
        // kernel's store step so full tiles and edge tiles round alike).
        let av = _mm256_set1_pd(alpha);
        let cols = [(c0l, c0h), (c1l, c1h), (c2l, c2h), (c3l, c3h)];
        for (j, (lo, hi)) in cols.into_iter().enumerate() {
            let cp = c.add(j * ldc);
            _mm256_storeu_pd(cp, _mm256_add_pd(_mm256_loadu_pd(cp), _mm256_mul_pd(av, lo)));
            let cp4 = cp.add(4);
            _mm256_storeu_pd(cp4, _mm256_add_pd(_mm256_loadu_pd(cp4), _mm256_mul_pd(av, hi)));
        }
    }
}
