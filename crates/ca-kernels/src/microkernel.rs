//! Register-blocked GEMM microkernels for both element types.
//!
//! Every kernel computes the same contraction over zero-padded packed panels:
//!
//! ```text
//! C[0..mr, 0..nr] += alpha * sum_p  a[p*mr + i] * b[p*nr + j]
//! ```
//!
//! where `a` is an `mr × kc` micro-panel of packed A (column `p` stored as
//! `mr` contiguous elements) and `b` is a `kc × nr` micro-panel of packed B
//! (row `p` stored as `nr` contiguous elements). `C` is addressed through
//! `(c, ldc)` in the usual column-major way. The `(mr, nr)` geometry is a
//! property of each kernel and travels with it in a
//! [`crate::gemm::KernelSpec`]:
//!
//! | kernel | type | tile | registers |
//! |---|---|---|---|
//! | `kernel_scalar_f64` | f64 | 8×4 | stack array |
//! | `kernel_scalar_f32` | f32 | 8×8 | stack array |
//! | `kernel_avx2_f64` | f64 | 8×4 | 8 `ymm` accumulators |
//! | `kernel_avx2_f32` | f32 | 8×8 | 8 `ymm` accumulators |
//! | `kernel_avx512_f64` | f64 | 16×4 | 8 `zmm` accumulators |
//! | `kernel_avx512_f32` | f32 | 16×8 | 8 `zmm` accumulators |
//!
//! The SIMD kernels keep the full accumulator tile in registers, issue one
//! FMA per packed B element per accumulator, and store with
//! `c += alpha*acc` as a separate multiply and add — matching the scalar
//! kernels' store step so full tiles and stack-buffered edge tiles round
//! identically *within* a backend. Backends differ bitwise from each other
//! (FMA contracts the multiply-add) but all stay within the `O(k·eps)`
//! conformance bound of a naive triple loop.

/// f64 portable/AVX2 tile height (rows of C per call).
pub const MR: usize = 8;
/// f64 portable/AVX2 tile width (columns of C per call).
pub const NR: usize = 4;
/// f32 portable/AVX2 tile height.
pub const MR_F32: usize = 8;
/// f32 portable/AVX2 tile width.
pub const NR_F32: usize = 8;
/// AVX-512 tile height (both types).
pub const MR_512: usize = 16;
/// f64 AVX-512 tile width.
pub const NR_512_F64: usize = 4;
/// f32 AVX-512 tile width.
pub const NR_512_F32: usize = 8;

macro_rules! scalar_kernel {
    ($name:ident, $t:ty, $mr:expr, $nr:expr, $doc:literal) => {
        #[doc = $doc]
        ///
        /// # Safety
        /// `a` must hold `mr * kc` elements, `b` must hold `nr * kc`
        /// elements, and `c` must point to an `mr × nr` column-major tile
        /// with leading dimension `ldc >= mr` valid for reads and writes.
        pub unsafe fn $name(kc: usize, alpha: $t, a: *const $t, b: *const $t, c: *mut $t, ldc: usize) {
            const MR_: usize = $mr;
            const NR_: usize = $nr;
            let mut acc = [0.0 as $t; MR_ * NR_];
            // SAFETY: panel bounds per the caller's contract.
            unsafe {
                for p in 0..kc {
                    let ap = a.add(p * MR_);
                    let bp = b.add(p * NR_);
                    for j in 0..NR_ {
                        let bv = *bp.add(j);
                        for i in 0..MR_ {
                            acc[j * MR_ + i] += *ap.add(i) * bv;
                        }
                    }
                }
                for j in 0..NR_ {
                    for i in 0..MR_ {
                        *c.add(i + j * ldc) += alpha * acc[j * MR_ + i];
                    }
                }
            }
        }
    };
}

scalar_kernel!(kernel_scalar_f64, f64, MR, NR, "Portable scalar f64 microkernel (8×4 tile).");
scalar_kernel!(kernel_scalar_f32, f32, MR_F32, NR_F32, "Portable scalar f32 microkernel (8×8 tile).");

/// AVX2 + FMA f64 microkernel (8×4 register tile).
///
/// # Safety
/// Same panel/tile requirements as [`kernel_scalar_f64`], plus the CPU must
/// support AVX2 and FMA (guaranteed by the runtime dispatch in `gemm`) and
/// `a` must be 32-byte aligned (packed panels in an aligned buffer).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn kernel_avx2_f64(kc: usize, alpha: f64, a: *const f64, b: *const f64, c: *mut f64, ldc: usize) {
    use core::arch::x86_64::*;
    // SAFETY: panel bounds per the caller's contract; loads/stores below
    // stay inside the packed panels and the MR×NR C tile.
    unsafe {
        // Accumulators: columns j = 0..4, each split into rows 0..4 / 4..8.
        let mut c0l = _mm256_setzero_pd();
        let mut c0h = _mm256_setzero_pd();
        let mut c1l = _mm256_setzero_pd();
        let mut c1h = _mm256_setzero_pd();
        let mut c2l = _mm256_setzero_pd();
        let mut c2h = _mm256_setzero_pd();
        let mut c3l = _mm256_setzero_pd();
        let mut c3h = _mm256_setzero_pd();

        for p in 0..kc {
            let ap = a.add(p * MR);
            let al = _mm256_load_pd(ap);
            let ah = _mm256_load_pd(ap.add(4));
            let bp = b.add(p * NR);

            let b0 = _mm256_broadcast_sd(&*bp);
            c0l = _mm256_fmadd_pd(al, b0, c0l);
            c0h = _mm256_fmadd_pd(ah, b0, c0h);
            let b1 = _mm256_broadcast_sd(&*bp.add(1));
            c1l = _mm256_fmadd_pd(al, b1, c1l);
            c1h = _mm256_fmadd_pd(ah, b1, c1h);
            let b2 = _mm256_broadcast_sd(&*bp.add(2));
            c2l = _mm256_fmadd_pd(al, b2, c2l);
            c2h = _mm256_fmadd_pd(ah, b2, c2h);
            let b3 = _mm256_broadcast_sd(&*bp.add(3));
            c3l = _mm256_fmadd_pd(al, b3, c3l);
            c3h = _mm256_fmadd_pd(ah, b3, c3h);
        }

        // C tile update: c += alpha * acc (mul then add, matching the scalar
        // kernel's store step so full tiles and edge tiles round alike).
        let av = _mm256_set1_pd(alpha);
        let cols = [(c0l, c0h), (c1l, c1h), (c2l, c2h), (c3l, c3h)];
        for (j, (lo, hi)) in cols.into_iter().enumerate() {
            let cp = c.add(j * ldc);
            _mm256_storeu_pd(cp, _mm256_add_pd(_mm256_loadu_pd(cp), _mm256_mul_pd(av, lo)));
            let cp4 = cp.add(4);
            _mm256_storeu_pd(cp4, _mm256_add_pd(_mm256_loadu_pd(cp4), _mm256_mul_pd(av, hi)));
        }
    }
}

/// AVX2 + FMA f32 microkernel (8×8 register tile: one `ymm` of 8 floats per
/// C column).
///
/// # Safety
/// Same panel/tile requirements as [`kernel_scalar_f32`], plus the CPU must
/// support AVX2 and FMA, and `a` must be 32-byte aligned.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn kernel_avx2_f32(kc: usize, alpha: f32, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    use core::arch::x86_64::*;
    // SAFETY: panel bounds per the caller's contract.
    unsafe {
        let mut acc = [_mm256_setzero_ps(); NR_F32];
        for p in 0..kc {
            let av = _mm256_load_ps(a.add(p * MR_F32));
            let bp = b.add(p * NR_F32);
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm256_broadcast_ss(&*bp.add(j));
                *accj = _mm256_fmadd_ps(av, bj, *accj);
            }
        }
        let av = _mm256_set1_ps(alpha);
        for (j, accj) in acc.into_iter().enumerate() {
            let cp = c.add(j * ldc);
            _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), _mm256_mul_ps(av, accj)));
        }
    }
}

/// AVX-512F f64 microkernel (16×4 register tile: two `zmm` of 8 doubles per
/// C column).
///
/// # Safety
/// `a` must hold `16 * kc` elements (64-byte aligned), `b` must hold
/// `4 * kc` elements, `c` must point to a 16×4 column-major tile with
/// `ldc >= 16` valid for reads and writes, and the CPU must support AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn kernel_avx512_f64(kc: usize, alpha: f64, a: *const f64, b: *const f64, c: *mut f64, ldc: usize) {
    use core::arch::x86_64::*;
    // SAFETY: panel bounds per the caller's contract.
    unsafe {
        let mut acc = [[_mm512_setzero_pd(); 2]; NR_512_F64];
        for p in 0..kc {
            let ap = a.add(p * MR_512);
            let al = _mm512_load_pd(ap);
            let ah = _mm512_load_pd(ap.add(8));
            let bp = b.add(p * NR_512_F64);
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm512_set1_pd(*bp.add(j));
                accj[0] = _mm512_fmadd_pd(al, bj, accj[0]);
                accj[1] = _mm512_fmadd_pd(ah, bj, accj[1]);
            }
        }
        let av = _mm512_set1_pd(alpha);
        for (j, [lo, hi]) in acc.into_iter().enumerate() {
            let cp = c.add(j * ldc);
            _mm512_storeu_pd(cp, _mm512_add_pd(_mm512_loadu_pd(cp), _mm512_mul_pd(av, lo)));
            let cp8 = cp.add(8);
            _mm512_storeu_pd(cp8, _mm512_add_pd(_mm512_loadu_pd(cp8), _mm512_mul_pd(av, hi)));
        }
    }
}

/// AVX-512F f32 microkernel (16×8 register tile: one `zmm` of 16 floats per
/// C column).
///
/// # Safety
/// `a` must hold `16 * kc` elements (64-byte aligned), `b` must hold
/// `8 * kc` elements, `c` must point to a 16×8 column-major tile with
/// `ldc >= 16` valid for reads and writes, and the CPU must support AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn kernel_avx512_f32(kc: usize, alpha: f32, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    use core::arch::x86_64::*;
    // SAFETY: panel bounds per the caller's contract.
    unsafe {
        let mut acc = [_mm512_setzero_ps(); NR_512_F32];
        for p in 0..kc {
            let av = _mm512_load_ps(a.add(p * MR_512));
            let bp = b.add(p * NR_512_F32);
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm512_set1_ps(*bp.add(j));
                *accj = _mm512_fmadd_ps(av, bj, *accj);
            }
        }
        let av = _mm512_set1_ps(alpha);
        for (j, accj) in acc.into_iter().enumerate() {
            let cp = c.add(j * ldc);
            _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), _mm512_mul_ps(av, accj)));
        }
    }
}
