//! Householder reflector primitives: generation (`dlarfg`), single-reflector
//! application (`dlarf`), compact-WY triangular factor assembly (`dlarft`),
//! and block-reflector application (`dlarfb`) — including the *pair* variant
//! that applies a reflector block to two discontiguous row blocks, which is
//! what the TSQR reduction-tree update (task S at inner tree nodes,
//! Algorithm 2 line 26 of the paper) needs.

use crate::gemm::{gemm, Kernel, Trans};
use ca_matrix::{MatView, MatViewMut, Matrix, Scalar};

/// Generates an elementary reflector `H = I − τ·v·vᵀ` with `v[0] = 1` such
/// that `H · [alpha; x] = [beta; 0]`.
///
/// On return `x` holds `v[1..]`; returns `(beta, tau)`. If `x` is zero,
/// `tau = 0` (H = I) and `beta = alpha`.
pub fn larfg<T: Scalar>(alpha: T, x: &mut [T]) -> (T, T) {
    let xnorm = x.iter().fold(T::ZERO, |s, &v| s + v * v).sqrt();
    if xnorm == T::ZERO {
        return (alpha, T::ZERO);
    }
    let mut beta = -(alpha.hypot(xnorm)).copysign(alpha);
    // Guard against underflow in the scaling factor for tiny beta.
    if beta == T::ZERO {
        beta = T::MIN_POSITIVE;
    }
    let tau = (beta - alpha) / beta;
    let scale = T::ONE / (alpha - beta);
    for v in x.iter_mut() {
        *v *= scale;
    }
    (beta, tau)
}

/// Applies `H = I − τ·v·vᵀ` from the left to `c` (`m × n`), where `v` is the
/// full reflector vector including the leading implicit `1`
/// (`v.len() == m`, `v[0]` ignored and treated as 1).
pub fn larf_left<T: Scalar>(tau: T, v: &[T], mut c: MatViewMut<'_, T>) {
    if tau == T::ZERO {
        return;
    }
    let m = c.nrows();
    assert_eq!(v.len(), m, "reflector length must equal row count");
    for j in 0..c.ncols() {
        let col = c.col_mut(j);
        // w = vᵀ c_j  (with v[0] treated as 1)
        let mut w = col[0];
        for i in 1..m {
            w += v[i] * col[i];
        }
        let tw = tau * w;
        col[0] -= tw;
        for i in 1..m {
            col[i] -= tw * v[i];
        }
    }
}

/// Builds the upper-triangular compact-WY factor `T` (`k × k`) from the
/// reflectors stored in `v` (`m × k`, unit lower trapezoidal: `v[i][j]` for
/// `i > j` are stored, the diagonal is implicitly 1, above is ignored) and
/// the scalar factors `tau` (`dlarft` with `DIRECT='F'`, `STOREV='C'`).
pub fn larft<T: Scalar>(v: MatView<'_, T>, tau: &[T], mut t: MatViewMut<'_, T>) {
    let m = v.nrows();
    let k = v.ncols();
    assert_eq!(tau.len(), k, "tau length must equal reflector count");
    assert!(t.nrows() >= k && t.ncols() >= k, "T must be at least k x k");

    for (j, &tj) in tau.iter().enumerate() {
        t.set(j, j, tj);
        if j > 0 {
            // w = Vᵀ v_j restricted to columns 0..j, where v_j has an
            // implicit 1 at row j and stored entries below.
            let mut w = vec![T::ZERO; j];
            for (i, wi) in w.iter_mut().enumerate() {
                let mut s = v.at(j, i); // row j of column i times the implicit 1
                for r in j + 1..m {
                    s += v.at(r, i) * v.at(r, j);
                }
                *wi = s;
            }
            // T[0..j, j] = -tau_j * T[0..j, 0..j] * w  (T upper triangular)
            for i in 0..j {
                let mut s = T::ZERO;
                for (l, &wl) in w.iter().enumerate().take(j).skip(i) {
                    s += t.at(i, l) * wl;
                }
                t.set(i, j, -tj * s);
            }
        }
        // Zero the strictly-lower part of column j so T is cleanly triangular.
        for i in j + 1..k {
            t.set(i, j, T::ZERO);
        }
    }
}

/// In place `W := V₁ᵀ · W` where `V₁` is `k × k` **unit lower** triangular
/// (stored entries strictly below the diagonal; diagonal implicit 1).
fn trmv_unit_lower_trans<T: Scalar>(v1: MatView<'_, T>, mut w: MatViewMut<'_, T>) {
    let k = v1.nrows();
    debug_assert_eq!(v1.ncols(), k);
    debug_assert_eq!(w.nrows(), k);
    for j in 0..w.ncols() {
        let col = w.col_mut(j);
        // (V₁ᵀ)[i, :] has 1 at i and V1[r, i] for r > i: process ascending so
        // each row reads only not-yet-overwritten entries.
        for i in 0..k {
            let mut s = col[i];
            for (r, &cr) in col.iter().enumerate().take(k).skip(i + 1) {
                s += v1.at(r, i) * cr;
            }
            col[i] = s;
        }
    }
}

/// In place `C₁ := C₁ − V₁ · W` where `V₁` is `k × k` unit lower triangular.
fn sub_unit_lower_mul<T: Scalar>(v1: MatView<'_, T>, w: MatView<'_, T>, mut c1: MatViewMut<'_, T>) {
    let k = v1.nrows();
    debug_assert_eq!(w.nrows(), k);
    debug_assert_eq!(c1.nrows(), k);
    debug_assert_eq!(c1.ncols(), w.ncols());
    for j in 0..w.ncols() {
        let wc = w.col(j);
        let cc = c1.col_mut(j);
        for i in 0..k {
            // (V₁ W)[i] = w[i] + sum_{l<i} V1[i,l] w[l]
            let mut s = wc[i];
            for (l, &wl) in wc.iter().enumerate().take(i) {
                s += v1.at(i, l) * wl;
            }
            cc[i] -= s;
        }
    }
}

/// In place `W := op(T) · W` with `T` upper triangular `k × k`.
fn trmv_upper<T: Scalar>(trans: Trans, t: MatView<'_, T>, mut w: MatViewMut<'_, T>) {
    let k = t.nrows();
    debug_assert_eq!(w.nrows(), k);
    for j in 0..w.ncols() {
        let col = w.col_mut(j);
        match trans {
            Trans::No => {
                // row i uses rows >= i: ascending is safe in place.
                for i in 0..k {
                    let mut s = T::ZERO;
                    for (l, &cl) in col.iter().enumerate().take(k).skip(i) {
                        s += t.at(i, l) * cl;
                    }
                    col[i] = s;
                }
            }
            Trans::Yes => {
                // (Tᵀ)[i, :] uses rows <= i: descending is safe in place.
                for i in (0..k).rev() {
                    let mut s = T::ZERO;
                    for (l, &cl) in col.iter().enumerate().take(i + 1) {
                        s += t.at(l, i) * cl;
                    }
                    col[i] = s;
                }
            }
        }
    }
}

/// Applies a compact-WY block reflector `Q = I − V·T·Vᵀ` (or its transpose)
/// from the left to a conceptually stacked matrix `[C_top; C_bot]`, where the
/// reflectors are likewise stacked `V = [V_top; V_bot]`:
///
/// * `v_top` is `k × k`, unit lower triangular (stored below the diagonal —
///   the upper part typically holds `R` and is ignored);
/// * `v_bot` is `r × k`, dense (possibly `r = 0`);
/// * `c_top` is `k × n`, `c_bot` is `r' × n` with `r' == r`.
///
/// `trans == Trans::Yes` applies `Qᵀ` (the factorization update direction);
/// `trans == Trans::No` applies `Q` (used when forming/applying Q).
///
/// The two C blocks may live at unrelated addresses — this is exactly the
/// inner-tree-node trailing update of multithreaded CAQR, where the stacked
/// `R` rows of two different block rows of the matrix are updated together.
pub fn larfb_left_pair<T: Kernel>(
    trans: Trans,
    v_top: MatView<'_, T>,
    v_bot: MatView<'_, T>,
    t: MatView<'_, T>,
    c_top: MatViewMut<'_, T>,
    c_bot: MatViewMut<'_, T>,
) {
    let mut c_rest = [c_bot];
    larfb_left_multi(trans, v_top, &[v_bot], t, c_top, &mut c_rest);
}

/// Generalization of [`larfb_left_pair`] to any number of discontiguous row
/// blocks: applies `op(Q)` with `Q = I − V·T·Vᵀ` where
/// `V = [V_top; V_rest[0]; V_rest[1]; …]` and the target is the conceptual
/// stack `[C_top; C_rest[0]; …]`. This is the flat-tree (height-1) TSQR
/// reduction update, where all `Tr` candidate `R` blocks reduce in one node.
///
/// # Panics
/// If block shapes are inconsistent or `v_rest.len() != c_rest.len()`.
pub fn larfb_left_multi<T: Kernel>(
    trans: Trans,
    v_top: MatView<'_, T>,
    v_rest: &[MatView<'_, T>],
    t: MatView<'_, T>,
    mut c_top: MatViewMut<'_, T>,
    c_rest: &mut [MatViewMut<'_, T>],
) {
    let k = v_top.nrows();
    assert_eq!(v_top.ncols(), k, "v_top must be square k x k");
    assert_eq!(c_top.nrows(), k, "c_top must have k rows");
    assert_eq!(v_rest.len(), c_rest.len(), "V and C block counts must match");
    let n = c_top.ncols();
    for (vb, cb) in v_rest.iter().zip(c_rest.iter()) {
        assert_eq!(vb.ncols(), k, "each V block must have k columns");
        assert_eq!(cb.nrows(), vb.nrows(), "C block rows must match V block");
        assert_eq!(cb.ncols(), n, "C blocks must share width");
    }
    if n == 0 || k == 0 {
        return;
    }

    let mut w = Matrix::zeros(k, n);
    w.view_mut().copy_from(c_top.as_ref());
    trmv_unit_lower_trans(v_top, w.view_mut());
    for (vb, cb) in v_rest.iter().zip(c_rest.iter()) {
        if vb.nrows() > 0 {
            gemm(Trans::Yes, Trans::No, T::ONE, *vb, cb.as_ref(), T::ONE, w.view_mut());
        }
    }
    trmv_upper(trans, t, w.view_mut());
    sub_unit_lower_mul(v_top, w.view(), c_top.rb());
    for (vb, cb) in v_rest.iter().zip(c_rest.iter_mut()) {
        if vb.nrows() > 0 {
            gemm(Trans::No, Trans::No, -T::ONE, *vb, w.view(), T::ONE, cb.rb());
        }
    }
}

/// Applies `op(Q)` from the left to a contiguous `m × n` block `c`, where
/// the reflectors are stored unit-lower-trapezoidally in `v` (`m × k`),
/// as produced by [`crate::geqr2`]/[`crate::geqr3`] (`dlarfb`).
pub fn larfb_left<T: Kernel>(trans: Trans, v: MatView<'_, T>, t: MatView<'_, T>, c: MatViewMut<'_, T>) {
    let m = v.nrows();
    let k = v.ncols();
    assert_eq!(c.nrows(), m, "C rows must match V rows");
    assert!(m >= k, "V must be tall (m >= k)");
    let v_top = v.sub(0, 0, k, k);
    let v_bot = v.sub(k, 0, m - k, k);
    let (c_top, c_bot) = c.split_at_row(k);
    larfb_left_pair(trans, v_top, v_bot, t, c_top, c_bot);
}

/// Forms the thin explicit `Q` (`m × k`) from packed reflectors `v` (`m × k`)
/// and compact-WY factor `t`: `Q = (I − V·T·Vᵀ) · [I_k; 0]`.
pub fn form_q_thin<T: Kernel>(v: MatView<'_, T>, t: MatView<'_, T>) -> Matrix<T> {
    let m = v.nrows();
    let k = v.ncols();
    let mut q = Matrix::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = T::ONE;
    }
    larfb_left(Trans::No, v, t, q.view_mut());
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::norm_max;

    #[test]
    fn larfg_annihilates_vector() {
        let alpha = 3.0;
        let mut x = vec![4.0];
        let (beta, tau) = larfg(alpha, &mut x);
        // H [3; 4] should be [±5; 0]
        assert!((beta.abs() - 5.0).abs() < 1e-14);
        // Apply H = I - tau v vᵀ manually to [3;4]:
        let v = [1.0, x[0]];
        let w = tau * (3.0 * v[0] + 4.0 * v[1]);
        let r0 = 3.0 - w * v[0];
        let r1 = 4.0 - w * v[1];
        assert!((r0 - beta).abs() < 1e-14);
        assert!(r1.abs() < 1e-14);
    }

    #[test]
    fn larfg_zero_tail_is_identity() {
        let mut x = vec![0.0, 0.0];
        let (beta, tau) = larfg(7.0, &mut x);
        assert_eq!(beta, 7.0);
        assert_eq!(tau, 0.0);
    }

    #[test]
    fn larfg_reflector_is_orthogonal() {
        let mut x = vec![1.0, -2.0, 0.5];
        let (_, tau) = larfg(0.7, &mut x);
        let v = [1.0, x[0], x[1], x[2]];
        // H = I - tau v vᵀ must satisfy HᵀH = I.
        let n = 4;
        let mut h = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] -= tau * v[i] * v[j];
            }
        }
        let hth = h.transpose().matmul(&h);
        let diff = hth.sub_matrix(&Matrix::identity(n));
        assert!(norm_max(diff.view()) < 1e-14);
    }

    #[test]
    fn larf_left_matches_explicit_reflector() {
        let mut rng = ca_matrix::seeded_rng(12);
        let c0 = ca_matrix::random_uniform(4, 3, &mut rng);
        let mut x = vec![0.3, -0.8, 0.1];
        let (_, tau) = larfg(1.5, &mut x);
        let v = vec![1.0, x[0], x[1], x[2]];

        let mut h = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                h[(i, j)] -= tau * v[i] * v[j];
            }
        }
        let expect = h.matmul(&c0);
        let mut c = c0.clone();
        larf_left(tau, &v, c.view_mut());
        assert!(norm_max(c.sub_matrix(&expect).view()) < 1e-14);
    }
}
