//! Rank-1 update (`dger` equivalent) and column scaling — the BLAS2
//! building blocks of unblocked Gaussian elimination.

use ca_matrix::{MatViewMut, Scalar};

/// `A := A + alpha * x * yᵀ` where `x` has `A.nrows()` and `y` has
/// `A.ncols()` elements.
///
/// # Panics
/// If the vector lengths do not match `A`'s shape.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], mut a: MatViewMut<'_, T>) {
    assert_eq!(x.len(), a.nrows(), "x length must equal row count");
    assert_eq!(y.len(), a.ncols(), "y length must equal column count");
    for (j, &yj) in y.iter().enumerate() {
        let s = alpha * yj;
        if s != T::ZERO {
            let col = a.col_mut(j);
            for (ci, &xi) in col.iter_mut().zip(x) {
                *ci += s * xi;
            }
        }
    }
}

/// `x := alpha * x` over a column slice.
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// Index of the element of maximum absolute value (`idamax`), or `None` for
/// an empty slice. NaN entries are treated as not-a-maximum (skipped) unless
/// every entry is NaN, in which case index 0 is returned.
pub fn iamax<T: Scalar>(x: &[T]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_val = -T::ONE;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        if a > best_val {
            best_val = a;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::Matrix;

    #[test]
    fn ger_matches_outer_product() {
        let mut a = Matrix::zeros(3, 2);
        ger(2.0, &[1.0, 2.0, 3.0], &[10.0, 20.0], a.view_mut());
        assert_eq!(a, Matrix::from_rows(3, 2, &[20.0, 40.0, 40.0, 80.0, 60.0, 120.0]));
    }

    #[test]
    fn ger_accumulates() {
        let mut a = Matrix::identity(2);
        ger(1.0, &[1.0, 1.0], &[1.0, 1.0], a.view_mut());
        assert_eq!(a, Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 2.0]));
    }

    #[test]
    fn iamax_finds_largest_magnitude() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[0.0, 0.0]), Some(0));
        assert_eq!(iamax::<f64>(&[]), None);
        // NaN never beats a real maximum.
        assert_eq!(iamax(&[1.0, f64::NAN, 3.0]), Some(2));
        // Same semantics in f32.
        assert_eq!(iamax(&[1.0f32, f32::NAN, -3.0]), Some(2));
    }

    #[test]
    fn scal_scales_in_place() {
        let mut x = vec![1.0, -2.0, 4.0];
        scal(0.5, &mut x);
        assert_eq!(x, vec![0.5, -1.0, 2.0]);
    }
}
