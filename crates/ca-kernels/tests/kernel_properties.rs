//! Property-based tests of the kernel layer against naive references:
//! `gemm` in all transpose combinations on strided views, triangular-solve
//! round-trips, Householder QR invariants, and LU reconstruction.

use ca_kernels::{gemm, geqr2, geqr3, getf2, larft, rgetf2, Trans};
use ca_matrix::{norm_max, seeded_rng, Matrix};
use proptest::prelude::*;

fn reference_gemm(ta: Trans, tb: Trans, alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &Matrix) -> Matrix {
    let oa = match ta {
        Trans::No => a.clone(),
        Trans::Yes => a.transpose(),
    };
    let ob = match tb {
        Trans::No => b.clone(),
        Trans::Yes => b.transpose(),
    };
    let ab = oa.matmul(&ob);
    Matrix::from_fn(c.nrows(), c.ncols(), |i, j| beta * c[(i, j)] + alpha * ab[(i, j)])
}

fn trans_strategy() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in trans_strategy(),
        tb in trans_strategy(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed);
        let (ar, ac) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (br, bc) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = ca_matrix::random_uniform(ar, ac, &mut rng);
        let b = ca_matrix::random_uniform(br, bc, &mut rng);
        let c0 = ca_matrix::random_uniform(m, n, &mut rng);
        let expect = reference_gemm(ta, tb, alpha, &a, &b, beta, &c0);
        let mut c = c0.clone();
        gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view_mut());
        let err = norm_max(c.sub_matrix(&expect).view());
        prop_assert!(err < 1e-11 * (k as f64 + 1.0), "err {}", err);
    }

    #[test]
    fn gemm_on_interior_strided_views(
        mo in 1usize..6,
        no in 1usize..6,
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..16,
        seed in 0u64..500,
    ) {
        // Multiply interior blocks of larger matrices (ld != rows) and check
        // surrounding data is untouched.
        let mut rng = seeded_rng(seed);
        let big_a = ca_matrix::random_uniform(mo + m + 2, k + 3, &mut rng);
        let big_b = ca_matrix::random_uniform(k + 1, no + n + 2, &mut rng);
        let mut big_c = ca_matrix::random_uniform(mo + m + 3, no + n + 1, &mut rng);
        let sentinel = big_c.clone();

        let a_own = Matrix::from_fn(m, k, |i, j| big_a[(mo + i, 1 + j)]);
        let b_own = Matrix::from_fn(k, n, |i, j| big_b[(1 + i, no + j)]);
        let c_own = Matrix::from_fn(m, n, |i, j| big_c[(mo + i, no + j)]);
        let expect = reference_gemm(Trans::No, Trans::No, 1.0, &a_own, &b_own, 1.0, &c_own);

        gemm(
            Trans::No,
            Trans::No,
            1.0,
            big_a.block(mo, 1, m, k),
            big_b.block(1, no, k, n),
            1.0,
            big_c.block_mut(mo, no, m, n),
        );
        for i in 0..m {
            for j in 0..n {
                prop_assert!((big_c[(mo + i, no + j)] - expect[(i, j)]).abs() < 1e-11);
            }
        }
        // Border untouched.
        for j in 0..big_c.ncols() {
            prop_assert_eq!(big_c[(0, j)], sentinel[(0, j)]);
            prop_assert_eq!(big_c[(big_c.nrows() - 1, j)], sentinel[(big_c.nrows() - 1, j)]);
        }
    }

    #[test]
    fn lu_kernels_agree_and_reconstruct(
        m in 1usize..48,
        n in 1usize..32,
        seed in 0u64..500,
    ) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let i1 = getf2(a1.view_mut());
        let i2 = rgetf2(a2.view_mut());
        prop_assert_eq!(&i1.pivots.ipiv, &i2.pivots.ipiv);
        let err = norm_max(a1.sub_matrix(&a2).view());
        prop_assert!(err < 1e-11, "blas2 vs recursive differ by {}", err);
        let perm = i1.pivots.to_permutation(m);
        let res = ca_matrix::lu_residual(&a0, &perm, &a1.unit_lower(), &a1.upper());
        prop_assert!(res < 1e-11, "residual {}", res);
    }

    #[test]
    fn qr_kernels_agree_on_abs_r(
        m in 1usize..48,
        nf in 0.05f64..1.0,
        seed in 0u64..500,
    ) {
        let n = ((m as f64 * nf) as usize).max(1);
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut a2 = a0.clone();
        let mut tau = Vec::new();
        geqr2(a2.view_mut(), &mut tau);
        if m >= n {
            let mut a3 = a0.clone();
            let mut t = Matrix::zeros(n, n);
            geqr3(a3.view_mut(), t.view_mut());
            for i in 0..n {
                for j in i..n {
                    let d = (a3[(i, j)].abs() - a2[(i, j)].abs()).abs();
                    prop_assert!(d < 1e-10 * (1.0 + a2[(i, j)].abs()), "R mismatch at ({},{})", i, j);
                }
            }
        }
        // |R| diagonal equals column norms of a Gram–Schmidt-like process:
        // first diagonal entry is the first column's norm.
        let col0: f64 = (0..m).map(|i| a0[(i, 0)] * a0[(i, 0)]).sum::<f64>().sqrt();
        prop_assert!((a2[(0, 0)].abs() - col0).abs() < 1e-10 * (1.0 + col0));
    }

    #[test]
    fn larft_t_is_consistent_with_reflector_product(
        m in 2usize..24,
        k in 1usize..6,
        seed in 0u64..500,
    ) {
        let k = k.min(m);
        let a0 = ca_matrix::random_uniform(m, k, &mut seeded_rng(seed));
        let mut a = a0.clone();
        let mut tau = Vec::new();
        geqr2(a.view_mut(), &mut tau);
        let mut t = Matrix::zeros(k, k);
        larft(a.block(0, 0, m, k), &tau, t.view_mut());
        // Q from (V, T) must be orthogonal and reproduce A = Q R.
        let q = ca_kernels::form_q_thin(a.block(0, 0, m, k), t.view());
        prop_assert!(ca_matrix::orthogonality(&q) < 1e-11 * m as f64);
        let r = Matrix::from_fn(k, k, |i, j| if i <= j { a[(i, j)] } else { 0.0 });
        let a_k = Matrix::from_fn(m, k, |i, j| a0[(i, j)]);
        let res = ca_matrix::qr_residual(&a_k, &q, &r);
        prop_assert!(res < 1e-11 * m as f64, "residual {}", res);
    }
}
